//! IMP — the Indirect Memory Prefetcher (Yu, Hughes, Satish, Devadas,
//! MICRO 2015), as configured in the Minnow paper's §6.3.3 comparison.
//!
//! IMP couples a stride stream detector on an *index array* `B` with an
//! indirect-pattern table that learns the affine map `addr(A[k]) =
//! base + coeff * k` from observed `(index value, subsequent address)`
//! pairs. Once the pattern is confirmed, each access to `B[i]` triggers
//! prefetches of `B[i+Δ]` (stream) and `A[B[i+Δ]]` (indirect), reading
//! `B[i+Δ]`'s value out of cached memory.
//!
//! The paper re-tuned IMP for its workloads: buffer sizes quadrupled (no
//! table-capacity misses — our per-region tables already never overflow)
//! and prefetch distance Δ=4. The structural limitations are inherent and
//! reproduced here:
//!
//! * reactive: nothing is prefetched until the processor already streams
//!   through the index array,
//! * fixed distance: the first Δ edges of every adjacency list are never
//!   covered, and lists shorter than Δ generate only useless prefetches,
//! * no feedback: no credit-style throttling, so efficiency degrades when
//!   the indirect targets thrash the L2.

use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::MemoryHierarchy;
use minnow_sim::observer::{HwPrefetchStats, HwPrefetcher, MemoryImage};

/// Stride-stream state over the index array region.
#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Indirect-pattern learning state (one per core in this model; the paper's
/// 4x-sized tables make capacity effects negligible).
#[derive(Debug, Clone, Copy, Default)]
struct Pattern {
    /// Last observed `(index value, indirect target address)` pair.
    last_pair: Option<(u64, u64)>,
    /// Learned affine map: `target = base + coeff * value`.
    coeff: i64,
    base: i64,
    confirmations: u8,
}

impl Pattern {
    fn active(&self) -> bool {
        self.confirmations >= 2
    }

    /// Feeds a `(value, target)` pair; learns/confirms the affine map.
    fn observe(&mut self, value: u64, target: u64) {
        if let Some((v1, a1)) = self.last_pair {
            if value != v1 {
                let dv = value as i64 - v1 as i64;
                let da = target as i64 - a1 as i64;
                if da % dv == 0 {
                    let coeff = da / dv;
                    let base = a1 as i64 - coeff * v1 as i64;
                    if coeff > 0 && coeff == self.coeff && base == self.base {
                        self.confirmations = (self.confirmations + 1).min(3);
                    } else if coeff > 0 {
                        self.coeff = coeff;
                        self.base = base;
                        self.confirmations = 1;
                    }
                }
            }
        }
        self.last_pair = Some((value, target));
    }

    fn predict(&self, value: u64) -> Option<u64> {
        if !self.active() {
            return None;
        }
        let t = self.base + self.coeff * value as i64;
        (t > 0).then_some(t as u64)
    }
}

/// The Indirect Memory Prefetcher.
#[derive(Debug)]
pub struct Imp {
    streams: Vec<Stream>,
    patterns: Vec<Pattern>,
    /// Pending indirect association: an index load's value waits for the
    /// next non-index load to form a training pair.
    pending_value: Vec<Option<u64>>,
    distance: i64,
    stats: HwPrefetchStats,
}

impl Imp {
    /// Builds IMP for `cores` cores with prefetch distance `distance`
    /// (the paper uses 4 after re-tuning).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `distance == 0`.
    pub fn new(cores: usize, distance: u32) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(distance > 0, "distance must be positive");
        Imp {
            streams: vec![Stream::default(); cores],
            patterns: vec![Pattern::default(); cores],
            pending_value: vec![None; cores],
            distance: distance as i64,
            stats: HwPrefetchStats::default(),
        }
    }

    /// The configured prefetch distance.
    pub fn distance(&self) -> u32 {
        self.distance as u32
    }

    /// Whether the indirect pattern has been learned for `core`.
    pub fn pattern_active(&self, core: usize) -> bool {
        self.patterns[core].active()
    }

    fn issue(&mut self, core: usize, target: u64, now: Cycle, mem: &mut MemoryHierarchy) {
        let res = mem.prefetch_fill(core, target, now);
        if res.filled {
            self.stats.issued += 1;
        } else {
            self.stats.already_resident += 1;
        }
    }
}

impl HwPrefetcher for Imp {
    fn name(&self) -> &'static str {
        "imp"
    }

    fn on_demand_load(
        &mut self,
        core: usize,
        addr: u64,
        value: Option<u64>,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        image: &dyn MemoryImage,
    ) {
        self.stats.observed += 1;

        let Some(v) = value else {
            // Non-index load: if an index value is pending, this is its
            // indirect target — train the pattern table.
            if let Some(pending) = self.pending_value[core].take() {
                self.patterns[core].observe(pending, addr);
            }
            return;
        };

        // Index-array load: update the stream detector.
        self.pending_value[core] = Some(v);
        let stream = &mut self.streams[core];
        if !stream.valid {
            *stream = Stream {
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let observed = addr as i64 - stream.last_addr as i64;
        stream.last_addr = addr;
        if observed == 0 {
            return;
        }
        if observed == stream.stride {
            stream.confidence = (stream.confidence + 1).min(3);
        } else {
            stream.stride = observed;
            stream.confidence = stream.confidence.saturating_sub(1);
            return;
        }
        if stream.confidence < 2 {
            return;
        }
        let stride = stream.stride;

        // Stream part: prefetch B[i+Δ].
        let ahead = addr as i64 + stride * self.distance;
        if ahead <= 0 {
            return;
        }
        let ahead = ahead as u64;
        if ahead >> 6 != addr >> 6 || stride.unsigned_abs() >= 64 {
            self.issue(core, ahead, now, mem);
        }

        // Indirect part: read B[i+Δ] from (cached) memory and prefetch
        // A[B[i+Δ]] through the learned map.
        if let Some(future_value) = image.read_u64(ahead) {
            if let Some(target) = self.patterns[core].predict(future_value) {
                self.issue(core, target, now, mem);
            }
        }
    }

    fn stats(&self) -> HwPrefetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::image::GraphImage;
    use minnow_graph::{AddressMap, Csr};
    use minnow_sim::SimConfig;

    /// A hub node 0 with many neighbors: the A[B[i]] showcase.
    fn hub_graph() -> Csr {
        let edges: Vec<(u32, u32)> = (1..40u32).map(|v| (0, v * 3 % 37 + 1)).collect();
        Csr::from_edges(120, &edges, None)
    }

    fn drive_hub(imp: &mut Imp, mem: &mut MemoryHierarchy, g: &Csr, map: AddressMap) {
        use minnow_sim::hierarchy::AccessKind;
        let img = GraphImage::new(g, map);
        for (e, dst, _) in g.edges_of(0) {
            // Processor touches B[e] (edge) then A[dst] (node) — the
            // canonical indirect pair; the prefetcher snoops each load.
            let t = e as u64 * 10;
            mem.access(0, map.edge_addr(e), AccessKind::Load, t);
            imp.on_demand_load(0, map.edge_addr(e), Some(dst as u64), t, mem, &img);
            mem.access(0, map.node_addr(dst), AccessKind::Load, t + 1);
            imp.on_demand_load(0, map.node_addr(dst), None, t + 1, mem, &img);
        }
    }

    #[test]
    fn learns_affine_pattern_and_prefetches_indirect_targets() {
        let g = hub_graph();
        let map = AddressMap::standard();
        let mut imp = Imp::new(1, 4);
        let mut mem = MemoryHierarchy::new(&SimConfig::small(1));
        drive_hub(&mut imp, &mut mem, &g, map);
        assert!(imp.pattern_active(0), "pattern must be learned");
        assert!(imp.stats().issued > 10, "issued {}", imp.stats().issued);
        // It prefetched node lines ahead of their demand access: some of
        // those fills were consumed (counted used).
        let used = mem.l2_cache(0).stats().prefetch_used.get();
        assert!(used > 5, "used {used}");
    }

    #[test]
    fn short_adjacency_lists_defeat_the_distance() {
        // Degree-2 nodes (road-like): the +4 distance always runs off the
        // end of each list (paper §6.3.3).
        let mut edges = Vec::new();
        for v in 0..50u32 {
            edges.push((v, (v + 1) % 50));
            edges.push((v, (v + 2) % 50));
        }
        let g = Csr::from_edges(50, &edges, None);
        let map = AddressMap::standard();
        let img = GraphImage::new(&g, map);
        let mut imp = Imp::new(1, 4);
        let mut mem = MemoryHierarchy::new(&SimConfig::small(1));
        // Tasks jump node to node; within a node only 2 sequential edges.
        for v in 0..50u32 {
            for (e, dst, _) in g.edges_of(v) {
                imp.on_demand_load(0, map.edge_addr(e), Some(dst as u64), e as u64, &mut mem, &img);
                imp.on_demand_load(0, map.node_addr(dst), None, e as u64, &mut mem, &img);
            }
        }
        let s = mem.l2_cache(0).stats();
        let used = s.prefetch_used.get();
        let fills = s.prefetch_fills.get();
        // Whatever fires is almost never useful.
        assert!(
            used * 5 <= fills.max(1),
            "short lists must waste IMP prefetches: used {used} of {fills}"
        );
    }

    #[test]
    fn pattern_learning_requires_consistency() {
        let mut p = Pattern::default();
        p.observe(10, 0x1000_0000_0000 + 10 * 32);
        p.observe(20, 0x1000_0000_0000 + 20 * 32);
        assert!(!p.active(), "one delta is not enough");
        p.observe(7, 0x1000_0000_0000 + 7 * 32);
        assert!(p.active());
        assert_eq!(p.predict(5), Some(0x1000_0000_0000 + 5 * 32));
    }

    #[test]
    fn inconsistent_pairs_never_activate() {
        let mut p = Pattern::default();
        p.observe(10, 0x5000);
        p.observe(20, 0x9999);
        p.observe(3, 0x1234);
        p.observe(77, 0x4321);
        assert!(!p.active());
        assert_eq!(p.predict(1), None);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn zero_cores_rejected() {
        let _ = Imp::new(0, 4);
    }
}

//! Area model (paper §5.4).
//!
//! The paper estimates Minnow's area from SRAM macros compiled at 28nm plus
//! a Quark-class in-order control unit measured from die photos, scaled to
//! 14nm and compared against a Skylake core+router+L3 slice (12.1 mm²):
//! total overhead below 1% per slice.

use minnow_sim::config::EngineParams;

/// Process node for area numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Process {
    /// 28nm planar (the paper's SRAM compiler numbers).
    Nm28,
    /// 14nm FinFET (the paper's comparison node).
    Nm14,
}

impl Process {
    /// SRAM density in mm² per KB (derived from the paper's ~0.03 mm² for
    /// ~10KB of engine SRAM at 28nm).
    fn sram_mm2_per_kb(self) -> f64 {
        match self {
            Process::Nm28 => 0.003,
            // The paper scales 0.03 mm² (28nm) to 0.008 mm² (14nm): ~3.75x.
            Process::Nm14 => 0.0008,
        }
    }

    /// Control-unit (Quark-class in-order x86) logic area in mm².
    fn control_unit_mm2(self) -> f64 {
        match self {
            // 0.5 mm² at 32nm is roughly 0.4 mm² at 28nm.
            Process::Nm28 => 0.4,
            Process::Nm14 => 0.1,
        }
    }
}

/// Skylake processor-router-L3 slice area at 14nm (die-photo analysis, §5.4).
pub const SKYLAKE_SLICE_MM2: f64 = 12.1;

/// Area breakdown of one Minnow engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// SRAM structures (queues, memories, load buffer, L2 metadata bits).
    pub sram_mm2: f64,
    /// Control-unit logic.
    pub logic_mm2: f64,
}

impl AreaEstimate {
    /// Total engine area.
    pub fn total_mm2(&self) -> f64 {
        self.sram_mm2 + self.logic_mm2
    }

    /// Overhead relative to a Skylake slice.
    pub fn slice_overhead(&self) -> f64 {
        self.total_mm2() / SKYLAKE_SLICE_MM2
    }

    /// Overhead relative to `slices` Skylake slices — the per-slice
    /// figure for a [`machine_estimate`] covering that many cores.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn overhead_of_slices(&self, slices: usize) -> f64 {
        assert!(slices > 0, "need at least one slice");
        self.total_mm2() / (SKYLAKE_SLICE_MM2 * slices as f64)
    }
}

/// Bytes of SRAM one engine needs, including the 1-bit-per-L2-line prefetch
/// metadata (stored in separate SRAM arrays, §5.4).
pub fn engine_sram_bytes(params: &EngineParams, l2_lines: usize) -> usize {
    let task_bytes = 16; // two 64-bit values per task (§4.1)
    let local_queue = params.local_queue * task_bytes;
    let threadlet_queue = params.threadlet_queue * 8;
    let load_buffer = params.load_buffer * 16; // CAM entry: address + tag
    let imem = 2048;
    let dmem = params.data_memory_bytes;
    let prefetch_bits = l2_lines.div_ceil(8);
    local_queue + threadlet_queue + load_buffer + imem + dmem + prefetch_bits
}

/// Estimates one engine's area at the given process.
pub fn estimate(params: &EngineParams, l2_lines: usize, process: Process) -> AreaEstimate {
    let sram_kb = engine_sram_bytes(params, l2_lines) as f64 / 1024.0;
    AreaEstimate {
        sram_mm2: sram_kb * process.sram_mm2_per_kb(),
        logic_mm2: process.control_unit_mm2(),
    }
}

/// Estimates the total Minnow area of a whole machine configuration:
/// `threads` cores sharing engines in groups of `cores_per_engine`
/// (paper §4's resource-reduction option; 1 = the evaluated per-core
/// attachment). This is the per-configuration cost the design-space
/// explorer trades against simulated speedup.
///
/// # Panics
///
/// Panics if `threads` or `cores_per_engine` is zero.
pub fn machine_estimate(
    params: &EngineParams,
    l2_lines: usize,
    threads: usize,
    cores_per_engine: usize,
    process: Process,
) -> AreaEstimate {
    assert!(threads > 0, "need at least one core");
    assert!(cores_per_engine > 0, "need at least one core per engine");
    let engines = threads.div_ceil(cores_per_engine) as f64;
    let one = estimate(params, l2_lines, process);
    AreaEstimate {
        sram_mm2: one.sram_mm2 * engines,
        logic_mm2: one.logic_mm2 * engines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_l2_lines() -> usize {
        // 256KB L2, 64B lines.
        256 * 1024 / 64
    }

    #[test]
    fn sram_inventory_matches_paper_structures() {
        let bytes = engine_sram_bytes(&EngineParams::paper(), paper_l2_lines());
        // 1KB local queue + 1KB threadlet queue + 0.5KB load buffer
        // + 2KB imem + 2KB dmem + 512B prefetch bits = ~7KB.
        assert!((6 * 1024..=9 * 1024).contains(&bytes), "bytes = {bytes}");
    }

    #[test]
    fn sram_area_at_28nm_matches_paper_scale() {
        let a = estimate(&EngineParams::paper(), paper_l2_lines(), Process::Nm28);
        // Paper: ~0.03 mm² of SRAM at 28nm.
        assert!(a.sram_mm2 > 0.01 && a.sram_mm2 < 0.05, "sram = {}", a.sram_mm2);
    }

    #[test]
    fn overhead_below_one_percent_at_14nm() {
        let a = estimate(&EngineParams::paper(), paper_l2_lines(), Process::Nm14);
        assert!(
            a.slice_overhead() < 0.01,
            "overhead {:.4} must be < 1%",
            a.slice_overhead()
        );
        assert!(a.total_mm2() > 0.0);
    }

    #[test]
    fn bigger_structures_cost_more() {
        let mut big = EngineParams::paper();
        big.local_queue *= 8;
        big.data_memory_bytes *= 8;
        let base = estimate(&EngineParams::paper(), paper_l2_lines(), Process::Nm14);
        let grown = estimate(&big, paper_l2_lines(), Process::Nm14);
        assert!(grown.sram_mm2 > base.sram_mm2);
        assert_eq!(grown.logic_mm2, base.logic_mm2);
    }
}

//! Worklist-directed prefetching (paper §5.3).
//!
//! Once the Minnow engine accepts a task into its local queue, that task is
//! guaranteed to run on its paired core, so the engine can prefetch the
//! task's entire input: the task record, the source node, its edges, and
//! every destination node (Fig. 14's `prefetchTask`/`prefetchEdge`
//! programs). TC uses a custom program that also prefetches the neighbor
//! adjacency prefixes its binary searches will probe.
//!
//! [`PrefetchPipeline`] models the engine back-end issuing these lines:
//! an in-order issue pipe that context-switches per load, a bounded CAM
//! load buffer (32 entries) holding in-flight fills, and the credit pool
//! throttling total outstanding prefetched lines (§5.3.1).

use std::collections::VecDeque;

use minnow_graph::{AddressMap, Csr};
use minnow_runtime::{PrefetchKind, Task};
use minnow_sim::config::EngineParams;
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::{MemoryHierarchy, PrefetchIssue};

use crate::credits::CreditPool;

/// Expands a task into the line addresses its prefetch program touches,
/// in issue order, deduplicated.
pub fn program_lines(
    kind: PrefetchKind,
    graph: &Csr,
    map: &AddressMap,
    task: &Task,
) -> Vec<u64> {
    let mut lines: Vec<u64> = Vec::new();
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut push = |addr: u64| {
        let line = addr & !63;
        if seen.insert(line) {
            lines.push(line);
        }
    };

    let v = task.node;
    // Source node record.
    push(map.node_addr(v));
    let degree = graph.out_degree(v);
    let range = task.resolve_range(degree);
    let base = graph.edge_range(v).start;

    match kind {
        PrefetchKind::Standard => {
            // Edges, then destination nodes (prefetchEdge per edge).
            for slot in range.clone() {
                push(map.edge_addr(base + slot));
            }
            for slot in range {
                let dst = graph.edge_dst(base + slot);
                push(map.node_addr(dst));
            }
        }
        PrefetchKind::TriangleCounting => {
            for slot in range.clone() {
                push(map.edge_addr(base + slot));
            }
            // For each neighbor: its node record plus the top of its
            // adjacency binary-search tree (the probe lines every search
            // through that list shares).
            for slot in range {
                let u = graph.edge_dst(base + slot);
                push(map.node_addr(u));
                let r = graph.edge_range(u);
                let (mut lo, mut hi) = (r.start, r.end);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    push(map.edge_addr(mid));
                    // Walk toward the middle: the expected probe path.
                    if hi - lo <= 4 {
                        break;
                    }
                    lo = lo + (mid - lo) / 2;
                    hi = mid + (hi - mid) / 2 + 1;
                }
            }
        }
    }
    lines
}

/// Statistics of one engine's prefetch pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchStats {
    /// Prefetch lines issued to the memory system.
    pub issued: u64,
    /// Lines skipped because they were already resident in L2.
    pub already_resident: u64,
    /// Issue attempts paused for lack of credits.
    pub credit_stalls: u64,
    /// Programs (tasks) enqueued for prefetching.
    pub programs: u64,
    /// Stale lines aged out of the bounded threadlet backlog (the worker
    /// overtook their task; their threadlets would find resident lines).
    pub aged_out: u64,
}

/// Hard bound on remembered backlog lines (memory safety valve; programs of
/// completed tasks are dropped long before this matters).
const MAX_BACKLOG_LINES: usize = 8192;

/// One load-buffer entry: a fill whose completion time is known, or one
/// whose shared leg is still in flight on the weave. A pending entry's
/// completion is `completes_base + beyond(seq)`; `lower_bound` is a sound
/// minimum, so entries are only resolved (forcing a weave round trip) when
/// the pipeline's clock actually reaches them.
#[derive(Debug, Clone, Copy)]
enum InflightFill {
    /// Fill completes at this cycle.
    Done(Cycle),
    /// Fill awaiting its weave reply.
    Pending {
        seq: u64,
        completes_base: Cycle,
        lower_bound: Cycle,
    },
}

/// The engine back-end prefetch issue model.
#[derive(Debug)]
pub struct PrefetchPipeline {
    /// Pending `(program, line)` pairs in issue order. Programs are numbered
    /// in local-queue acceptance order, which is exactly the worker's pop
    /// order (the local queue is FIFO, paper §5.2) — so when the worker pops
    /// task *n*, every pending line of programs `< n` belongs to a task that
    /// already executed; its threadlet would find resident lines, and the
    /// pipeline drops it instead of burning credits on dead fills.
    pending: VecDeque<(u64, u64)>,
    /// Programs enqueued so far (next sequence number).
    next_program: u64,
    /// Tasks the worker has started (pops observed).
    pops: u64,
    /// In-flight fills (bounded by the load buffer). Unordered: retirement
    /// removes every entry at or before the issue clock, and the earliest
    /// entry is searched for only when the buffer is actually full — both
    /// observationally identical to the min-heap this used to be.
    inflight: Vec<InflightFill>,
    load_buffer: usize,
    issue_interval: Cycle,
    issue_clock: Cycle,
    credits: CreditPool,
    stats: PrefetchStats,
}

impl PrefetchPipeline {
    /// Builds a pipeline with the paper's engine geometry and `credits`
    /// initial prefetch credits.
    pub fn new(params: &EngineParams, credits: u32) -> Self {
        PrefetchPipeline {
            pending: VecDeque::new(),
            next_program: 0,
            pops: 0,
            inflight: Vec::new(),
            load_buffer: params.load_buffer,
            // Issue pipe: a couple of cycles per threadlet step plus the
            // CAM wakeup amortized over switches.
            issue_interval: 2 + params.load_buffer_wakeup / 2,
            issue_clock: 0,
            credits: CreditPool::new(credits),
            stats: PrefetchStats::default(),
        }
    }

    /// Queues a task's prefetch program (one program per accepted task, in
    /// local-queue order).
    pub fn enqueue_program(&mut self, lines: impl IntoIterator<Item = u64>) {
        let seq = self.next_program;
        self.next_program += 1;
        self.stats.programs += 1;
        self.pending.extend(lines.into_iter().map(|l| (seq, l)));
        while self.pending.len() > MAX_BACKLOG_LINES {
            self.pending.pop_front();
            self.stats.aged_out += 1;
        }
    }

    /// Notes that the worker popped (started) the next task. Pending lines
    /// of all *previously started* tasks are stale (their task already ran)
    /// and are dropped; the just-started task's lines stay, since a task is
    /// "dispatched to worker threads and concurrently prefetched" (§5.3.1).
    pub fn note_pop(&mut self) {
        self.pops += 1;
        let stale_below = self.pops.saturating_sub(1);
        while let Some(&(seq, _)) = self.pending.front() {
            if seq < stale_below {
                self.pending.pop_front();
                self.stats.aged_out += 1;
            } else {
                break;
            }
        }
    }

    /// Lines awaiting issue.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// The credit pool (for inspection).
    pub fn credits(&self) -> &CreditPool {
        &self.credits
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Settles every pending fill whose lower bound the issue clock has
    /// reached — only those could retire, so later ones stay deferred.
    fn resolve_due(&mut self, mem: &mut MemoryHierarchy) {
        for f in &mut self.inflight {
            if let InflightFill::Pending {
                seq,
                completes_base,
                lower_bound,
            } = *f
            {
                if lower_bound <= self.issue_clock {
                    let (beyond, _level) = mem.resolve_beyond(seq);
                    *f = InflightFill::Done(completes_base + beyond);
                }
            }
        }
    }

    /// Settles every pending fill (needed when the exact earliest
    /// completion matters: the load buffer is full).
    fn resolve_all(&mut self, mem: &mut MemoryHierarchy) {
        for f in &mut self.inflight {
            if let InflightFill::Pending {
                seq,
                completes_base,
                ..
            } = *f
            {
                let (beyond, _level) = mem.resolve_beyond(seq);
                *f = InflightFill::Done(completes_base + beyond);
            }
        }
    }

    /// Completion cycle of an entry; caller guarantees it is resolved.
    fn completion(f: &InflightFill) -> Cycle {
        match f {
            InflightFill::Done(c) => *c,
            InflightFill::Pending { .. } => unreachable!("resolved before inspection"),
        }
    }

    /// Removes the earliest-completing entry (all entries resolved).
    fn remove_earliest(&mut self) {
        let idx = self
            .inflight
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| Self::completion(f))
            .map(|(i, _)| i)
            .expect("load buffer non-empty when full");
        self.inflight.swap_remove(idx);
    }

    /// Advances the pipeline to time `now`: returns freed credits from the
    /// hierarchy, then issues as many pending lines as buffer, credits, and
    /// time allow.
    pub fn pump(&mut self, core: usize, now: Cycle, mem: &mut MemoryHierarchy) {
        let freed = mem.drain_returned_credits(core);
        if freed > 0 {
            self.credits.release(freed as u32);
        }
        loop {
            if self.pending.is_empty() {
                return;
            }
            // Retire completed fills up to the current issue point. A
            // pending fill can only retire once its lower bound is reached,
            // so resolve_due leaves distant fills parked on the weave.
            self.resolve_due(mem);
            let clock = self.issue_clock;
            self.inflight.retain(|f| match f {
                InflightFill::Done(c) => *c > clock,
                InflightFill::Pending { .. } => true,
            });
            let mut issue_at = self.issue_clock;
            if self.inflight.len() >= self.load_buffer {
                // Must wait for a load-buffer slot: the exact earliest
                // completion now matters, so settle everything.
                self.resolve_all(mem);
                let earliest = self
                    .inflight
                    .iter()
                    .map(Self::completion)
                    .min()
                    .expect("non-empty");
                issue_at = issue_at.max(earliest);
            }
            if issue_at > now {
                return; // the engine hasn't reached this point in time yet
            }
            if !self.credits.try_consume() {
                self.stats.credit_stalls += 1;
                return; // paused until credits come back
            }
            let (_, addr) = self.pending.pop_front().expect("checked non-empty");
            match mem.prefetch_fill_deferred(core, addr, issue_at) {
                PrefetchIssue::Filled(res) => {
                    mem.tracer().emit(|| {
                        minnow_sim::trace::TraceEvent::complete(
                            "wdp",
                            "prefetch",
                            core as u32,
                            issue_at,
                            res.latency,
                        )
                        .with_arg("addr", addr)
                    });
                    self.stats.issued += 1;
                    if self.inflight.len() >= self.load_buffer {
                        self.remove_earliest();
                    }
                    self.inflight.push(InflightFill::Done(issue_at + res.latency));
                }
                PrefetchIssue::Deferred {
                    seq,
                    base,
                    min_beyond,
                } => {
                    // Traced points never run the weave, so the "wdp" trace
                    // event needs no deferred counterpart.
                    self.stats.issued += 1;
                    if self.inflight.len() >= self.load_buffer {
                        self.remove_earliest();
                    }
                    self.inflight.push(InflightFill::Pending {
                        seq,
                        completes_base: issue_at + base,
                        lower_bound: issue_at + base + min_beyond,
                    });
                }
                PrefetchIssue::Resident => {
                    // Already resident: no line marked, credit goes back.
                    self.credits.release(1);
                    self.stats.already_resident += 1;
                }
            }
            self.issue_clock = issue_at + self.issue_interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_sim::SimConfig;

    fn chain_graph() -> Csr {
        // 0 -> 1,2,3 ; 1 -> 2 ; sorted for TC.
        let mut g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)], None);
        g.sort_adjacency();
        g
    }

    #[test]
    fn standard_program_covers_node_edges_dsts() {
        let g = chain_graph();
        let map = AddressMap::standard();
        let lines = program_lines(PrefetchKind::Standard, &g, &map, &Task::new(0, 0));
        // Source node line.
        assert!(lines.contains(&(map.node_addr(0) & !63)));
        // Edge line (3 edges fit one line).
        assert!(lines.contains(&(map.edge_addr(0) & !63)));
        // Destination node lines (nodes 1,2 share a line; node 3 next line).
        assert!(lines.contains(&(map.node_addr(2) & !63)));
        assert!(lines.contains(&(map.node_addr(3) & !63)));
        // All lines distinct.
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), lines.len());
    }

    #[test]
    fn split_task_prefetches_only_its_range() {
        let g = chain_graph();
        let map = AddressMap::standard();
        let whole = program_lines(PrefetchKind::Standard, &g, &map, &Task::new(0, 0));
        let part = program_lines(
            PrefetchKind::Standard,
            &g,
            &map,
            &Task::with_range(0, 0, 0, 1),
        );
        assert!(part.len() < whole.len());
    }

    #[test]
    fn tc_program_reaches_neighbor_adjacency() {
        let g = chain_graph();
        let map = AddressMap::wide_nodes();
        let lines = program_lines(PrefetchKind::TriangleCounting, &g, &map, &Task::new(0, 0));
        // Probes node 1's adjacency (edge index 3).
        assert!(lines.contains(&(map.edge_addr(3) & !63)));
    }

    fn pipeline(credits: u32) -> (PrefetchPipeline, MemoryHierarchy) {
        let cfg = SimConfig::small(2);
        (
            PrefetchPipeline::new(&cfg.engine, credits),
            MemoryHierarchy::new(&cfg),
        )
    }

    #[test]
    fn pump_issues_and_marks_lines() {
        let (mut p, mut mem) = pipeline(32);
        p.enqueue_program([0x10000, 0x20000, 0x30000]);
        p.pump(0, 10_000, &mut mem);
        assert_eq!(p.stats().issued, 3);
        assert!(mem.l2_cache(0).probe_prefetched(0x10000));
        assert_eq!(p.backlog(), 0);
        assert!(p.credits().check_conservation());
    }

    #[test]
    fn credits_throttle_issue() {
        let (mut p, mut mem) = pipeline(2);
        p.enqueue_program((0..8u64).map(|i| 0x10000 + i * 64));
        p.pump(0, 100_000, &mut mem);
        assert_eq!(p.stats().issued, 2);
        assert_eq!(p.backlog(), 6);
        assert!(p.stats().credit_stalls > 0);
        // Consume one prefetched line -> one credit returns -> one more issue.
        mem.access(0, 0x10000, minnow_sim::hierarchy::AccessKind::Load, 200_000);
        p.pump(0, 300_000, &mut mem);
        assert_eq!(p.stats().issued, 3);
    }

    #[test]
    fn resident_lines_do_not_burn_credits() {
        let (mut p, mut mem) = pipeline(4);
        mem.access(0, 0x50000, minnow_sim::hierarchy::AccessKind::Load, 0);
        p.enqueue_program([0x50000]);
        p.pump(0, 10_000, &mut mem);
        assert_eq!(p.stats().already_resident, 1);
        assert_eq!(p.credits().available(), 4);
    }

    #[test]
    fn issue_respects_time() {
        let (mut p, mut mem) = pipeline(32);
        p.enqueue_program((0..100u64).map(|i| 0x10000 + i * 64));
        p.pump(0, 0, &mut mem);
        let early = p.stats().issued;
        assert!(early < 100, "cannot issue 100 lines in 0 cycles");
        p.pump(0, 1_000_000, &mut mem);
        assert!(p.stats().issued > early);
    }

    #[test]
    fn load_buffer_bounds_inflight() {
        let (mut p, mut mem) = pipeline(256);
        p.enqueue_program((0..200u64).map(|i| 0x100000 + i * 64));
        p.pump(0, 50, &mut mem);
        // At t=50 with a 32-entry buffer and ~250-cycle fills, at most
        // ~32 + a few can have issued.
        assert!(p.stats().issued <= 40, "issued {}", p.stats().issued);
    }
}

//! Worklist offload: the Minnow scheduler (paper §5.2, Fig. 13).
//!
//! Workers see only accelerator calls: `minnow_enqueue` is a fire-and-forget
//! store (a few cycles), `minnow_dequeue` hits the engine's local queue in
//! 10 cycles. Everything else — spilling low-priority tasks to the software
//! global OBIM worklist, proactively refilling the local queue, and
//! worklist-directed prefetching — happens on the engines' own timelines
//! through their core's L2, so scheduling leaves the worker's critical path.
//!
//! [`MinnowScheduler`] implements the runtime's
//! [`SchedulerModel`], making it a drop-in replacement for the software
//! scheduler in every experiment.

use std::sync::Arc;

use minnow_graph::{layout, AddressMap, Csr};
use minnow_runtime::sched::{DequeueOutcome, SchedStats, SchedulerModel};
use minnow_runtime::worklist::{Obim, Worklist};
use minnow_runtime::{PrefetchKind, Task};
use minnow_sim::config::EngineParams;
use minnow_sim::contend::SharedResource;
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::{AccessKind, MemoryHierarchy};

use crate::engine::{Engine, EngineStats};
use crate::wdp::program_lines;

/// Worker-side cost of a fire-and-forget accelerator call.
const ACCEL_CALL: Cycle = 3;
/// Worker-side instructions per accelerator call.
const ACCEL_INSTRS: u64 = 2;
/// Engine instructions per global-worklist operation (in-order, IPC 1).
const ENGINE_OP_WORK: Cycle = 30;

/// Minnow scheduler configuration.
#[derive(Debug, Clone)]
pub struct MinnowConfig {
    /// OBIM bucket interval exponent programmed into the engines.
    pub lg_bucket_interval: u32,
    /// Engine hardware parameters.
    pub engine: EngineParams,
    /// Worklist-directed prefetching credits; `None` disables prefetching.
    pub prefetch_credits: Option<u32>,
    /// Maximum tasks streamed per refill.
    pub refill_batch: usize,
    /// Cores sharing one engine (paper §4: "Cores may share a single Minnow
    /// engine to reduce resources"). Shared engines offload the worklist for
    /// their whole group but cannot prefetch (they attach to one L2);
    /// `prefetch_credits` must be `None` when this exceeds 1.
    pub cores_per_engine: usize,
}

impl MinnowConfig {
    /// The paper's evaluated configuration (64-entry local queue, 32
    /// credits) with the given bucket interval.
    pub fn paper(lg_bucket_interval: u32) -> Self {
        MinnowConfig {
            lg_bucket_interval,
            engine: EngineParams::paper(),
            prefetch_credits: Some(32),
            refill_batch: 16,
            cores_per_engine: 1,
        }
    }

    /// A shared-engine configuration: `cores_per_engine` cores per engine,
    /// prefetching disabled (paper §4's resource-reduction option).
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_engine == 0`.
    pub fn shared(lg_bucket_interval: u32, cores_per_engine: usize) -> Self {
        assert!(cores_per_engine > 0, "need at least one core per engine");
        let mut cfg = MinnowConfig::no_prefetch(lg_bucket_interval);
        cfg.cores_per_engine = cores_per_engine;
        cfg
    }

    /// Same, with worklist-directed prefetching disabled (the paper's
    /// "Minnow without prefetching" configuration).
    pub fn no_prefetch(lg_bucket_interval: u32) -> Self {
        let mut cfg = MinnowConfig::paper(lg_bucket_interval);
        cfg.prefetch_credits = None;
        cfg
    }
}

/// Aggregated engine-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinnowStats {
    /// Sum over engines.
    pub engines: EngineStats,
    /// Prefetch lines issued.
    pub prefetch_issued: u64,
    /// Prefetch lines skipped as already resident.
    pub prefetch_resident: u64,
    /// Credit starvation pauses.
    pub credit_stalls: u64,
}

/// The Minnow worklist-offload scheduler: one engine per core plus the
/// software global priority worklist the engines maintain.
#[derive(Debug)]
pub struct MinnowScheduler {
    cfg: MinnowConfig,
    engines: Vec<Engine>,
    global: Obim,
    /// Serialization among engines on the global worklist: one resource per
    /// 8-engine socket (the paper's §6.2.1 topology), plus a global bucket
    /// map touched on refills.
    socket_res: Vec<SharedResource>,
    bucket_map_res: SharedResource,
    /// Front-end serialization among the cores sharing each engine (empty
    /// when engines are per-core).
    frontend_res: Vec<SharedResource>,
    graph: Arc<Csr>,
    map: AddressMap,
    prefetch_kind: PrefetchKind,
    stats: SchedStats,
}

impl MinnowScheduler {
    /// Builds engines for `threads` cores over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        graph: Arc<Csr>,
        map: AddressMap,
        prefetch_kind: PrefetchKind,
        threads: usize,
        cfg: MinnowConfig,
    ) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(cfg.cores_per_engine > 0, "need at least one core per engine");
        assert!(
            cfg.cores_per_engine == 1 || cfg.prefetch_credits.is_none(),
            "shared engines cannot prefetch (they attach to one core's L2)"
        );
        let sockets = threads.div_ceil(8);
        let engines = threads.div_ceil(cfg.cores_per_engine);
        MinnowScheduler {
            engines: (0..engines)
                .map(|e| Engine::new(e * cfg.cores_per_engine, cfg.engine, cfg.prefetch_credits))
                .collect(),
            global: Obim::new(cfg.lg_bucket_interval),
            socket_res: (0..sockets).map(|_| SharedResource::new(30)).collect(),
            bucket_map_res: SharedResource::new(8),
            frontend_res: if cfg.cores_per_engine > 1 {
                (0..engines).map(|_| SharedResource::new(6)).collect()
            } else {
                Vec::new()
            },
            graph,
            map,
            prefetch_kind,
            stats: SchedStats::default(),
            cfg,
        }
    }

    /// Per-engine statistics, aggregated.
    pub fn minnow_stats(&self) -> MinnowStats {
        let mut s = MinnowStats::default();
        for e in &self.engines {
            let es = e.stats();
            s.engines.local_accepts += es.local_accepts;
            s.engines.spills += es.spills;
            s.engines.refills += es.refills;
            s.engines.refilled_tasks += es.refilled_tasks;
            s.engines.local_hits += es.local_hits;
            s.engines.local_misses += es.local_misses;
            if let Some(p) = e.pipeline() {
                s.prefetch_issued += p.stats().issued;
                s.prefetch_resident += p.stats().already_resident;
                s.credit_stalls += p.stats().credit_stalls;
            }
        }
        s
    }

    /// The engine serving `core`.
    fn engine_of(&self, core: usize) -> usize {
        core / self.cfg.cores_per_engine
    }

    /// Front-end serialization cost for `core` touching its (possibly
    /// shared) engine at `now`.
    fn frontend_wait(&mut self, core: usize, now: Cycle) -> Cycle {
        if self.frontend_res.is_empty() {
            return 0;
        }
        let e = self.engine_of(core);
        let acq = self.frontend_res[e].acquire(core, now, 2);
        acq.waited
    }

    /// One engine (test/diagnostic access; indexed by engine, which equals
    /// the core id when engines are per-core).
    pub fn engine(&self, engine: usize) -> &Engine {
        &self.engines[engine]
    }

    /// Flushes a core's engine for a context switch (`minnow_flush`): local
    /// tasks move to the global worklist.
    pub fn flush_engine(&mut self, core: usize, now: Cycle, mem: &mut MemoryHierarchy) {
        let e = self.engine_of(core);
        let tasks = self.engines[e].flush();
        let mut at = now;
        for t in tasks {
            at = self.spill(core, t, at, mem);
        }
    }

    /// Queues the task's worklist-directed prefetch program on acceptance.
    fn queue_prefetch(&mut self, core: usize, task: &Task) {
        if self.cfg.prefetch_credits.is_none() {
            return;
        }
        let lines = program_lines(self.prefetch_kind, &self.graph, &self.map, task);
        let e = self.engine_of(core);
        if let Some(p) = self.engines[e].pipeline_mut() {
            p.enqueue_program(lines);
        }
    }

    /// Engine-side spill of one task to the global worklist; returns the
    /// spill's completion time. The engine back-end is multithreaded
    /// (context switch per load, §5.1), so its clock advances only by the
    /// issue work — the memory latency overlaps with other threadlets.
    fn spill(&mut self, core: usize, task: Task, start: Cycle, mem: &mut MemoryHierarchy) -> Cycle {
        let e = self.engine_of(core);
        let bucket = task.bucket(self.cfg.lg_bucket_interval);
        let engine_start = self.engines[e].clock().max(start);
        let socket = (core / 8).min(self.socket_res.len() - 1);
        let acq = self.socket_res[socket].acquire(core, engine_start, 6);
        let line = layout::WORKLIST_BASE + (bucket.min(1 << 20)) * 64;
        let access = mem.engine_access(core, line, AccessKind::Store, acq.start);
        self.global.push(task);
        let done = self.engines[e].busy(acq.done, ENGINE_OP_WORK);
        mem.tracer().emit(|| {
            minnow_sim::trace::TraceEvent::instant("spill", "sched", core as u32, acq.start)
                .with_arg("bucket", bucket)
        });
        done + access.latency
    }

    /// Engine-side refill from the global worklist; streams accepted tasks
    /// into the engine and returns the completion time (`None` if nothing
    /// was eligible).
    fn refill(
        &mut self,
        core: usize,
        start: Cycle,
        urgent: bool,
        mem: &mut MemoryHierarchy,
    ) -> Option<Cycle> {
        let head = self.global.head_bucket()?;
        let e = self.engine_of(core);
        let engine = &self.engines[e];
        // Fig. 12: stream only if head is at least as urgent as the local
        // bucket; unconditionally when the local queue is empty.
        let local_empty = engine.local_len() + engine.incoming_len() == 0;
        if !local_empty && head > engine.local_bucket() {
            return None;
        }
        // A blocking (worker-stalling) refill preempts the engine's queued
        // background work; proactive ones run behind it.
        let engine_start = if urgent {
            start
        } else {
            self.engines[e].clock().max(start)
        };
        let socket = (core / 8).min(self.socket_res.len() - 1);
        let acq = self.socket_res[socket].acquire(core, engine_start, 6);
        let head_move = self.bucket_map_res.acquire(core, acq.start, 4);
        let line = layout::WORKLIST_BASE + (head.min(1 << 20)) * 64;
        let access = mem.engine_access(core, line, AccessKind::Store, head_move.done);

        let room = self
            .cfg
            .engine
            .local_queue
            .saturating_sub(self.engines[e].local_len());
        let batch = self.cfg.refill_batch.min(room.max(1));
        let mut tasks = Vec::with_capacity(batch);
        while tasks.len() < batch {
            match self.global.head_bucket() {
                Some(b) if b == head => {
                    tasks.push(self.global.pop().expect("head bucket non-empty"));
                }
                _ => break,
            }
        }
        if tasks.is_empty() {
            return None;
        }
        let work = ENGINE_OP_WORK + 6 * tasks.len() as Cycle;
        let done = if urgent {
            self.engines[e].busy(head_move.done, 0);
            head_move.done + work + access.latency
        } else {
            self.engines[e].busy(head_move.done, work) + access.latency
        };
        for t in &tasks {
            self.queue_prefetch(core, t);
        }
        let streamed = tasks.len() as u64;
        self.engines[e].stream_in(done, tasks, head);
        mem.tracer().emit(|| {
            minnow_sim::trace::TraceEvent::instant("refill", "sched", core as u32, acq.start)
                .with_arg("bucket", head)
                .with_arg("tasks", streamed)
        });
        Some(done)
    }
}

impl SchedulerModel for MinnowScheduler {
    fn label(&self) -> String {
        match self.cfg.prefetch_credits {
            Some(c) => format!("minnow(obim({}), {c} credits)", self.cfg.lg_bucket_interval),
            None => format!("minnow(obim({}), no-wdp)", self.cfg.lg_bucket_interval),
        }
    }

    fn seed(&mut self, tasks: Vec<Task>) {
        // Initial tasks spread across engines' local queues, as minnow_init
        // + per-thread enqueues would.
        let n = self.engines.len();
        for (i, t) in tasks.into_iter().enumerate() {
            let core = i % n;
            let bucket = t.bucket(self.cfg.lg_bucket_interval);
            if self.engines[core].try_local_enqueue(t, bucket) {
                self.queue_prefetch(core, &t);
            } else {
                self.global.push(t);
            }
        }
    }

    fn enqueue(
        &mut self,
        thread: usize,
        task: Task,
        now: Cycle,
        mem: &mut MemoryHierarchy,
    ) -> Cycle {
        self.stats.enqueues += 1;
        self.stats.instrs += ACCEL_INSTRS;
        self.stats.op_cycles += ACCEL_CALL;

        let e = self.engine_of(thread);
        let fe_wait = self.frontend_wait(thread, now);
        self.engines[e].admit_incoming(now);
        let bucket = task.bucket(self.cfg.lg_bucket_interval);
        let mut cost = ACCEL_CALL + fe_wait;
        if self.engines[e].try_local_enqueue(task, bucket) {
            self.queue_prefetch(thread, &task);
        } else {
            // Backpressure (paper §5.3.2): spill threadlets occupy queue
            // entries; once the engine's backlog exceeds the threadlet
            // queue's drain time, the accelerator call blocks the worker.
            let backlog_cap =
                self.cfg.engine.threadlet_queue as Cycle * ENGINE_OP_WORK;
            let backlog = self.engines[e].clock().saturating_sub(now);
            if backlog > backlog_cap {
                let stall = backlog - backlog_cap;
                cost += stall;
                self.stats.wait_cycles += stall;
            }
            self.spill(thread, task, now + cost - ACCEL_CALL, mem);
        }
        self.engines[e].pump_prefetch(now, mem);
        self.stats.op_cycles += cost - ACCEL_CALL;
        cost
    }

    fn dequeue(
        &mut self,
        thread: usize,
        now: Cycle,
        mem: &mut MemoryHierarchy,
    ) -> DequeueOutcome {
        self.stats.instrs += ACCEL_INSTRS;
        let e = self.engine_of(thread);
        let fe_wait = self.frontend_wait(thread, now);
        self.engines[e].admit_incoming(now);
        self.engines[e].pump_prefetch(now, mem);
        let hit_latency = self.cfg.engine.local_queue_latency + fe_wait;

        // Fast path: local queue hit.
        if let Some(task) = self.engines[e].local_pop() {
            // Proactive refill below the threshold (asynchronous), unless
            // one is already in flight.
            if self.engines[e].wants_refill() && self.engines[e].incoming_len() == 0 {
                self.refill(thread, now, false, mem);
            }
            self.stats.dequeues += 1;
            self.stats.op_cycles += hit_latency;
            return DequeueOutcome {
                task: Some(task),
                cost: hit_latency,
            };
        }
        self.engines[e].note_local_miss();

        // The worker is stalled: an urgent refill from the global worklist
        // preempts any queued background work. Fall back to an in-flight
        // proactive refill's arrival, whichever lands first.
        let urgent_done = self.refill(thread, now, true, mem);
        let incoming_at = self.engines[e].next_incoming_at();
        let wake = match (urgent_done, incoming_at) {
            (Some(a), Some(b)) => Some(a.min(b.max(now))),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b.max(now)),
            (None, None) => None,
        };
        if let Some(wake) = wake {
            self.engines[e].admit_incoming(wake);
            if let Some(task) = self.engines[e].local_pop() {
                let cost = (wake - now) + hit_latency;
                self.stats.dequeues += 1;
                self.stats.op_cycles += cost;
                self.stats.wait_cycles += wake - now;
                return DequeueOutcome {
                    task: Some(task),
                    cost,
                };
            }
        }

        // Global worklist is empty: fail fast so the worker can run
        // termination detection (minnow_done).
        self.stats.empty_dequeues += 1;
        self.stats.op_cycles += hit_latency;
        DequeueOutcome {
            task: None,
            cost: hit_latency,
        }
    }

    fn peek_dequeue(&self, thread: usize, now: Cycle) -> Option<Task> {
        // Only the engine-local fast path is predictable without mutating
        // scheduler state: the blocking-refill fallback depends on engine
        // clocks and the global bucket map, so decline it (conservative
        // `None` just skips speculation for that dequeue).
        self.engines[self.engine_of(thread)].peek_next(now)
    }

    fn pending(&self) -> usize {
        self.global.len()
            + self
                .engines
                .iter()
                .map(|e| e.local_len() + e.incoming_len())
                .sum::<usize>()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }

    fn tick(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        for e in &mut self.engines {
            e.admit_incoming(now);
            e.pump_prefetch(now, mem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_sim::SimConfig;

    fn setup(threads: usize, cfg: MinnowConfig) -> (MinnowScheduler, MemoryHierarchy) {
        let g = Arc::new(grid::generate(&GridConfig::new(8, 8), 1));
        let sched = MinnowScheduler::new(
            g,
            AddressMap::standard(),
            PrefetchKind::Standard,
            threads,
            cfg,
        );
        let mem = MemoryHierarchy::new(&SimConfig::small(threads));
        (sched, mem)
    }

    #[test]
    fn fast_path_costs_are_paper_latencies() {
        let (mut s, mut mem) = setup(2, MinnowConfig::no_prefetch(0));
        let c = s.enqueue(0, Task::new(0, 5), 0, &mut mem);
        assert_eq!(c, ACCEL_CALL);
        let d = s.dequeue(0, 100, &mut mem);
        assert_eq!(d.task.unwrap().node, 5);
        assert_eq!(d.cost, 10);
    }

    #[test]
    fn low_priority_tasks_spill_to_global() {
        let (mut s, mut mem) = setup(1, MinnowConfig::no_prefetch(0));
        s.enqueue(0, Task::new(1, 1), 0, &mut mem);
        // Bigger bucket than local: must spill.
        s.enqueue(0, Task::new(50, 2), 10, &mut mem);
        assert_eq!(s.engine(0).stats().spills, 1);
        assert_eq!(s.pending(), 2);
        // Local task first, then the spilled one via refill.
        let a = s.dequeue(0, 1000, &mut mem);
        assert_eq!(a.task.unwrap().node, 1);
        let b = s.dequeue(0, 2000, &mut mem);
        assert_eq!(b.task.unwrap().node, 2);
        assert!(b.cost >= 10, "refill path must cost at least the hit");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn empty_dequeue_fails_fast() {
        let (mut s, mut mem) = setup(1, MinnowConfig::no_prefetch(0));
        let d = s.dequeue(0, 0, &mut mem);
        assert!(d.task.is_none());
        assert_eq!(s.stats().empty_dequeues, 1);
    }

    #[test]
    fn seed_spreads_across_engines() {
        let (mut s, _mem) = setup(4, MinnowConfig::no_prefetch(0));
        s.seed((0..8).map(|i| Task::new(0, i)).collect());
        for core in 0..4 {
            assert_eq!(s.engine(core).local_len(), 2);
        }
    }

    #[test]
    fn prefetching_marks_upcoming_task_data() {
        let (mut s, mut mem) = setup(1, MinnowConfig::paper(0));
        s.enqueue(0, Task::new(0, 12), 0, &mut mem);
        // Let the engine pump well past issue time.
        s.tick(100_000, &mut mem);
        let stats = s.minnow_stats();
        assert!(stats.prefetch_issued > 0, "WDP must have issued lines");
        // The source node's line is marked in L2.
        let map = AddressMap::standard();
        assert!(mem.l2_cache(0).probe_prefetched(map.node_addr(12)));
    }

    #[test]
    fn flush_moves_local_tasks_to_global() {
        let (mut s, mut mem) = setup(2, MinnowConfig::no_prefetch(0));
        s.enqueue(0, Task::new(0, 1), 0, &mut mem);
        s.enqueue(0, Task::new(0, 2), 5, &mut mem);
        assert_eq!(s.engine(0).local_len(), 2);
        s.flush_engine(0, 100, &mut mem);
        assert_eq!(s.engine(0).local_len(), 0);
        assert_eq!(s.pending(), 2);
        // Another core can now pick the tasks up.
        let d = s.dequeue(1, 10_000, &mut mem);
        assert!(d.task.is_some());
    }

    #[test]
    fn refill_respects_priority_filter() {
        let (mut s, mut mem) = setup(1, MinnowConfig::no_prefetch(0));
        // Local queue holds bucket-0 work; global holds bucket-9 work.
        s.enqueue(0, Task::new(0, 1), 0, &mut mem);
        s.enqueue(0, Task::new(9, 2), 5, &mut mem); // spills
        assert_eq!(s.pending(), 2);
        // Proactive refill on dequeue must NOT pull bucket 9 while local
        // bucket is 0... after popping the last local task the queue is
        // empty, so the sync path accepts it unconditionally.
        let a = s.dequeue(0, 1000, &mut mem);
        assert_eq!(a.task.unwrap().node, 1);
        let b = s.dequeue(0, 5000, &mut mem);
        assert_eq!(b.task.unwrap().node, 2);
    }

    #[test]
    fn shared_engine_serves_multiple_cores() {
        let (mut s, mut mem) = setup(4, MinnowConfig::shared(0, 4));
        // All four cores feed the single shared engine.
        s.enqueue(0, Task::new(0, 1), 0, &mut mem);
        s.enqueue(3, Task::new(0, 2), 5, &mut mem);
        assert_eq!(s.engine(0).local_len(), 2);
        // Any core in the group can pop.
        let a = s.dequeue(2, 100, &mut mem);
        assert_eq!(a.task.unwrap().node, 1);
        let b = s.dequeue(1, 200, &mut mem);
        assert_eq!(b.task.unwrap().node, 2);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn shared_engine_rejects_prefetching() {
        let g = Arc::new(grid::generate(&GridConfig::new(4, 4), 1));
        let mut cfg = MinnowConfig::paper(0);
        cfg.cores_per_engine = 2;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MinnowScheduler::new(g, AddressMap::standard(), PrefetchKind::Standard, 4, cfg)
        }));
        assert!(r.is_err(), "shared engines with WDP must be rejected");
    }

    #[test]
    fn label_reflects_configuration() {
        let (s, _) = setup(1, MinnowConfig::paper(3));
        assert!(s.label().contains("32 credits"));
        let (s2, _) = setup(1, MinnowConfig::no_prefetch(3));
        assert!(s2.label().contains("no-wdp"));
    }
}

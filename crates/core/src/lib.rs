//! # minnow-core — the Minnow engines
//!
//! The paper's primary contribution: per-core programmable offload engines
//! that (a) take worklist scheduling off the worker's critical path and
//! (b) perform *worklist-directed prefetching* — using the scheduler's
//! perfect knowledge of upcoming tasks to prefetch their inputs into the
//! core's L2, throttled by a credit system tied to L2 line occupancy.
//!
//! * [`engine`] — the per-core engine: 64-entry local task queue with
//!   bucket-priority filtering (Fig. 12), background spill/refill timeline,
//! * [`offload`] — [`offload::MinnowScheduler`], a drop-in
//!   [`minnow_runtime::SchedulerModel`]: workers pay 3-cycle enqueues and
//!   10-cycle dequeues while engines maintain the software global OBIM
//!   worklist through their core's L2,
//! * [`wdp`] — the `prefetchTask`/`prefetchEdge` programs (Fig. 14), the TC
//!   custom program, and the engine back-end issue pipeline (32-entry load
//!   buffer, context switch per load),
//! * [`credits`] — the credit pool (§5.3.1),
//! * [`threadlet`] — reservation-based deadlock avoidance (§5.3.2),
//! * [`program`] — the threadlet bytecode ISA, assembler, and interpreter
//!   behind "fully programmable" (§5.3's custom prefetch functions),
//! * [`isa`] — functional model of the five `minnow_*` instructions with
//!   TLB-miss exceptions (§4.1),
//! * [`area`] — the §5.4 area model (< 1% per Skylake slice).
//!
//! ## Example: Minnow vs the software worklist
//!
//! ```
//! use minnow_core::offload::{MinnowConfig, MinnowScheduler};
//! use minnow_runtime::sched::SchedulerModel;
//! use minnow_runtime::{PrefetchKind, Task};
//! use minnow_graph::AddressMap;
//! use minnow_sim::{MemoryHierarchy, SimConfig};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(minnow_graph::gen::grid::generate(
//!     &minnow_graph::gen::grid::GridConfig::new(8, 8), 1));
//! let mut mem = MemoryHierarchy::new(&SimConfig::small(2));
//! let mut sched = MinnowScheduler::new(
//!     graph, AddressMap::standard(), PrefetchKind::Standard, 2,
//!     MinnowConfig::paper(0));
//! let cost = sched.enqueue(0, Task::new(0, 5), 0, &mut mem);
//! assert_eq!(cost, 3); // fire-and-forget accelerator call
//! let d = sched.dequeue(0, 100, &mut mem);
//! assert_eq!(d.cost, 10); // local-queue hit
//! assert_eq!(d.task.unwrap().node, 5);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod area;
pub mod credits;
pub mod engine;
pub mod isa;
pub mod offload;
pub mod program;
pub mod threadlet;
pub mod wdp;

pub use crate::credits::CreditPool;
pub use crate::engine::Engine;
pub use crate::isa::{MinnowDevice, MinnowException};
pub use crate::offload::{MinnowConfig, MinnowScheduler};

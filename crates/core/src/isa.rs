//! The Minnow ISA extension (paper §4.1): a functional model of the five
//! accelerator instructions, including TLB-miss exceptions.
//!
//! Minnow engines cannot handle TLB misses; the instruction that caused one
//! "throws an exception, leveraging the host processor to properly handle
//! the miss". [`MinnowDevice`] models that: worklist spill pages must be
//! mapped before an enqueue/dequeue touching them succeeds, and unmapped
//! touches raise [`MinnowException::TlbMiss`] for the host to service (via
//! [`MinnowDevice::handle_tlb_miss`]) before retrying.
//!
//! This layer is *functional* (no timing): it nails down the architectural
//! semantics that the timed model in [`crate::offload`] abstracts, and is
//! what the failure-injection tests drive.

use std::collections::HashSet;

use minnow_graph::layout;
use minnow_runtime::worklist::{Obim, Worklist};
use minnow_runtime::Task;

/// Page size used by the TLB model.
pub const PAGE_BYTES: u64 = 4096;

/// Exceptions a Minnow instruction can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinnowException {
    /// The engine touched an unmapped page; the host must map it
    /// ([`MinnowDevice::handle_tlb_miss`]) and retry the instruction.
    TlbMiss {
        /// Faulting virtual address.
        addr: u64,
    },
}

impl std::fmt::Display for MinnowException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinnowException::TlbMiss { addr } => write!(f, "TLB miss at {addr:#x}"),
        }
    }
}

impl std::error::Error for MinnowException {}

/// A per-core engine's architectural state in the functional model.
#[derive(Debug, Default)]
struct CoreState {
    local: Vec<Task>,
    local_bucket: u64,
}

/// Functional model of the Minnow device across all cores.
#[derive(Debug)]
pub struct MinnowDevice {
    cores: Vec<CoreState>,
    global: Obim,
    lg_bucket_interval: u32,
    local_capacity: usize,
    /// Mapped pages (shared L2 TLB contents, §4).
    tlb: HashSet<u64>,
    tlb_misses: u64,
}

impl MinnowDevice {
    /// `minnow_init`: initializes engines across all cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn init(cores: usize, lg_bucket_interval: u32, local_capacity: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        MinnowDevice {
            cores: (0..cores).map(|_| CoreState::default()).collect(),
            global: Obim::new(lg_bucket_interval),
            lg_bucket_interval,
            local_capacity,
            tlb: HashSet::new(),
            tlb_misses: 0,
        }
    }

    fn page_of(addr: u64) -> u64 {
        addr / PAGE_BYTES
    }

    fn touch(&mut self, addr: u64) -> Result<(), MinnowException> {
        if self.tlb.contains(&Self::page_of(addr)) {
            Ok(())
        } else {
            self.tlb_misses += 1;
            Err(MinnowException::TlbMiss { addr })
        }
    }

    /// Host-side TLB-miss handler: maps the faulting page; the instruction
    /// can then be retried.
    pub fn handle_tlb_miss(&mut self, e: MinnowException) {
        let MinnowException::TlbMiss { addr } = e;
        self.tlb.insert(Self::page_of(addr));
    }

    /// TLB misses raised so far.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb_misses
    }

    /// `minnow_enqueue`: enqueues `(priority, ptr)` on `core`'s engine.
    ///
    /// # Errors
    ///
    /// [`MinnowException::TlbMiss`] when the task spills to an unmapped
    /// worklist page.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn enqueue(
        &mut self,
        core: usize,
        priority: u64,
        ptr: u32,
    ) -> Result<(), MinnowException> {
        let task = Task::new(priority, ptr);
        let bucket = task.bucket(self.lg_bucket_interval);
        let state = &mut self.cores[core];
        if state.local.len() < self.local_capacity
            && (state.local.is_empty() || bucket <= state.local_bucket)
        {
            if state.local.is_empty() {
                state.local_bucket = bucket;
            } else {
                state.local_bucket = state.local_bucket.min(bucket);
            }
            state.local.push(task);
            return Ok(());
        }
        // Spill: touches the global worklist's backing memory.
        let spill_addr = layout::WORKLIST_BASE + bucket * PAGE_BYTES;
        self.touch(spill_addr)?;
        self.global.push(task);
        Ok(())
    }

    /// `minnow_dequeue`: returns the next task pointer, or `None` when the
    /// worklist is empty (the core should then run `minnow_done`).
    ///
    /// # Errors
    ///
    /// [`MinnowException::TlbMiss`] when a global-worklist fill touches an
    /// unmapped page.
    pub fn dequeue(&mut self, core: usize) -> Result<Option<Task>, MinnowException> {
        if let Some(t) = self.take_local(core) {
            return Ok(Some(t));
        }
        // Fill from the global worklist.
        if let Some(bucket) = self.global.head_bucket() {
            let fill_addr = layout::WORKLIST_BASE + bucket * PAGE_BYTES;
            self.touch(fill_addr)?;
            self.cores[core].local_bucket = bucket;
            while self.cores[core].local.len() < self.local_capacity {
                match self.global.head_bucket() {
                    Some(b) if b == bucket => {
                        let t = self.global.pop().expect("non-empty head bucket");
                        self.cores[core].local.push(t);
                    }
                    _ => break,
                }
            }
        }
        Ok(self.take_local(core))
    }

    fn take_local(&mut self, core: usize) -> Option<Task> {
        let state = &mut self.cores[core];
        if state.local.is_empty() {
            None
        } else {
            Some(state.local.remove(0))
        }
    }

    /// `minnow_flush`: drains `core`'s local queue into the global worklist
    /// (core context switch). Returns how many tasks were flushed.
    ///
    /// # Errors
    ///
    /// [`MinnowException::TlbMiss`] when a spill page is unmapped; handled
    /// misses leave already-flushed tasks in the global worklist and the
    /// rest local, so the instruction can be retried.
    pub fn flush(&mut self, core: usize) -> Result<usize, MinnowException> {
        let mut flushed = 0;
        while let Some(&task) = self.cores[core].local.first() {
            let bucket = task.bucket(self.lg_bucket_interval);
            let spill_addr = layout::WORKLIST_BASE + bucket * PAGE_BYTES;
            self.touch(spill_addr)?;
            self.cores[core].local.remove(0);
            self.global.push(task);
            flushed += 1;
        }
        self.cores[core].local_bucket = u64::MAX;
        Ok(flushed)
    }

    /// `minnow_done`: true when every engine is idle and the global worklist
    /// is empty.
    pub fn done(&self) -> bool {
        self.global.is_empty() && self.cores.iter().all(|c| c.local.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_roundtrip_needs_no_tlb() {
        let mut d = MinnowDevice::init(2, 2, 4);
        d.enqueue(0, 5, 7).unwrap();
        let t = d.dequeue(0).unwrap().unwrap();
        assert_eq!(t.node, 7);
        assert_eq!(d.tlb_misses(), 0);
        assert!(d.done());
    }

    #[test]
    fn spill_faults_then_retries() {
        let mut d = MinnowDevice::init(1, 0, 1);
        d.enqueue(0, 0, 1).unwrap(); // fills the 1-entry local queue
        let err = d.enqueue(0, 0, 2).unwrap_err(); // spill -> TLB miss
        d.handle_tlb_miss(err);
        d.enqueue(0, 0, 2).unwrap(); // retry succeeds
        assert_eq!(d.tlb_misses(), 1);
        assert!(!d.done());
        assert_eq!(d.dequeue(0).unwrap().unwrap().node, 1);
        assert_eq!(d.dequeue(0).unwrap().unwrap().node, 2);
        assert!(d.done());
    }

    #[test]
    fn dequeue_pulls_highest_priority_bucket() {
        let mut d = MinnowDevice::init(1, 1, 1);
        d.enqueue(0, 9, 1).unwrap(); // local (bucket 4)
        // These spill; map their pages eagerly by handling the misses.
        for (p, n) in [(2u64, 2u32), (3, 3)] {
            if let Err(e) = d.enqueue(0, p, n) {
                d.handle_tlb_miss(e);
                d.enqueue(0, p, n).unwrap();
            }
        }
        // Local task drains first, then the urgent bucket (1) from global.
        assert_eq!(d.dequeue(0).unwrap().unwrap().node, 1);
        let next = match d.dequeue(0) {
            Ok(t) => t,
            Err(e) => {
                d.handle_tlb_miss(e);
                d.dequeue(0).unwrap()
            }
        };
        assert_eq!(next.unwrap().priority, 2);
    }

    #[test]
    fn flush_moves_everything_global_and_is_retryable() {
        let mut d = MinnowDevice::init(2, 0, 8);
        d.enqueue(0, 1, 1).unwrap();
        d.enqueue(0, 1, 2).unwrap();
        let err = d.flush(0).unwrap_err();
        d.handle_tlb_miss(err);
        let flushed = d.flush(0).unwrap();
        assert_eq!(flushed, 2);
        // Core 1 can now pick the work up.
        let got = match d.dequeue(1) {
            Ok(t) => t,
            Err(e) => {
                d.handle_tlb_miss(e);
                d.dequeue(1).unwrap()
            }
        };
        assert_eq!(got.unwrap().node, 1);
    }

    #[test]
    fn done_tracks_all_queues() {
        let mut d = MinnowDevice::init(2, 0, 4);
        assert!(d.done());
        d.enqueue(1, 0, 3).unwrap();
        assert!(!d.done());
        d.dequeue(1).unwrap();
        assert!(d.done());
    }

    #[test]
    fn exception_display() {
        let e = MinnowException::TlbMiss { addr: 0x1000 };
        assert_eq!(e.to_string(), "TLB miss at 0x1000");
    }
}

//! Threadlet queue with reservation-based deadlock avoidance (paper §5.3.2).
//!
//! Threadlets are short engine-side threads that may spawn further
//! threadlets (`prefetchTask` spawns one `prefetchEdge` per edge). Because
//! prefetches can stall on credits and spawns can stall on a full queue,
//! the paper requires every threadlet to reserve, *before it is created*,
//! one queue/context/load-buffer entry for itself plus its maximum spawn
//! depth. Entries are released only at completion, so a context switch can
//! always find a runnable threadlet and the engine never deadlocks.
//!
//! [`ThreadletQueue`] enforces exactly that discipline and is exercised by
//! the failure-injection tests (queue exhaustion, over-depth spawn
//! attempts).

/// Why a spawn or reservation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadletError {
    /// Not enough free entries to admit the reservation; the caller must
    /// context switch and retry after completions free entries.
    QueueFull,
    /// A threadlet tried to spawn deeper than it reserved for.
    DepthExceeded,
    /// Completion/spawn referenced an unknown reservation.
    UnknownReservation,
}

impl std::fmt::Display for ThreadletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadletError::QueueFull => write!(f, "threadlet queue full"),
            ThreadletError::DepthExceeded => write!(f, "spawn depth exceeds reservation"),
            ThreadletError::UnknownReservation => write!(f, "unknown threadlet reservation"),
        }
    }
}

impl std::error::Error for ThreadletError {}

/// Handle to an admitted root threadlet's reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

#[derive(Debug)]
struct Reservation {
    /// Entries reserved (1 for the root + spawn depth).
    entries: u32,
    /// Children spawned and not yet completed.
    live_children: u32,
    /// Children the root may still spawn concurrently
    /// (= entries - 1 - live_children).
    root_done: bool,
}

/// Bounded threadlet admission control.
///
/// Capacity models the union of the hardware structures a threadlet needs:
/// threadlet-queue slot, context-buffer slot (64B in data memory), and a
/// load-buffer entry (paper §5.1: "Each threadlet must reserve an entry in
/// the threadlet queue, context buffer, and load buffer for itself prior to
/// being created").
#[derive(Debug)]
pub struct ThreadletQueue {
    capacity: u32,
    reserved: u32,
    next_id: u64,
    reservations: std::collections::HashMap<u64, Reservation>,
    admitted: u64,
    rejected: u64,
}

impl ThreadletQueue {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "threadlet queue needs capacity");
        ThreadletQueue {
            capacity,
            reserved: 0,
            next_id: 0,
            reservations: std::collections::HashMap::new(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// Entries currently reserved.
    pub fn reserved(&self) -> u32 {
        self.reserved
    }

    /// Free entries.
    pub fn free(&self) -> u32 {
        self.capacity - self.reserved
    }

    /// Admits a root threadlet that may spawn children `spawn_depth` deep
    /// concurrently. Reserves `1 + spawn_depth` entries up front.
    ///
    /// # Errors
    ///
    /// [`ThreadletError::QueueFull`] when the reservation does not fit —
    /// the engine should context switch and retry later;
    /// [`ThreadletError::DepthExceeded`] when the requested depth cannot
    /// ever fit the queue (programmer error the paper guards against:
    /// "the max threadlet spawn depth [must be] less than the threadlet
    /// queue size").
    pub fn admit(&mut self, spawn_depth: u32) -> Result<ReservationId, ThreadletError> {
        let entries = 1 + spawn_depth;
        if entries > self.capacity {
            return Err(ThreadletError::DepthExceeded);
        }
        if self.reserved + entries > self.capacity {
            self.rejected += 1;
            return Err(ThreadletError::QueueFull);
        }
        self.reserved += entries;
        let id = self.next_id;
        self.next_id += 1;
        self.reservations.insert(
            id,
            Reservation {
                entries,
                live_children: 0,
                root_done: false,
            },
        );
        self.admitted += 1;
        Ok(ReservationId(id))
    }

    /// Spawns a child under an existing reservation (uses a pre-reserved
    /// entry; never allocates new ones).
    ///
    /// # Errors
    ///
    /// [`ThreadletError::DepthExceeded`] if all reserved child entries are
    /// in use; [`ThreadletError::UnknownReservation`] for a stale id.
    pub fn spawn_child(&mut self, id: ReservationId) -> Result<(), ThreadletError> {
        let r = self
            .reservations
            .get_mut(&id.0)
            .ok_or(ThreadletError::UnknownReservation)?;
        if r.live_children + 1 > r.entries - 1 {
            return Err(ThreadletError::DepthExceeded);
        }
        r.live_children += 1;
        Ok(())
    }

    /// Completes one child of the reservation.
    ///
    /// # Errors
    ///
    /// [`ThreadletError::UnknownReservation`] if the id is stale or has no
    /// live children.
    pub fn complete_child(&mut self, id: ReservationId) -> Result<(), ThreadletError> {
        let r = self
            .reservations
            .get_mut(&id.0)
            .ok_or(ThreadletError::UnknownReservation)?;
        if r.live_children == 0 {
            return Err(ThreadletError::UnknownReservation);
        }
        r.live_children -= 1;
        self.try_release(id);
        Ok(())
    }

    /// Marks the root threadlet complete; the reservation is released once
    /// all children have also completed.
    ///
    /// # Errors
    ///
    /// [`ThreadletError::UnknownReservation`] for a stale id.
    pub fn complete_root(&mut self, id: ReservationId) -> Result<(), ThreadletError> {
        let r = self
            .reservations
            .get_mut(&id.0)
            .ok_or(ThreadletError::UnknownReservation)?;
        r.root_done = true;
        self.try_release(id);
        Ok(())
    }

    fn try_release(&mut self, id: ReservationId) {
        let done = match self.reservations.get(&id.0) {
            Some(r) => r.root_done && r.live_children == 0,
            None => false,
        };
        if done {
            let r = self.reservations.remove(&id.0).expect("checked above");
            self.reserved -= r.entries;
        }
    }

    /// Roots ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Admissions refused because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Deadlock-freedom invariant: with every reservation released the queue
    /// must be empty again. Exposed for property tests.
    pub fn is_quiescent(&self) -> bool {
        self.reservations.is_empty() && self.reserved == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_reserves_depth_plus_one() {
        let mut q = ThreadletQueue::new(8);
        let id = q.admit(2).unwrap();
        assert_eq!(q.reserved(), 3);
        q.complete_root(id).unwrap();
        assert!(q.is_quiescent());
    }

    #[test]
    fn children_use_reserved_entries_only() {
        let mut q = ThreadletQueue::new(8);
        let id = q.admit(2).unwrap();
        q.spawn_child(id).unwrap();
        q.spawn_child(id).unwrap();
        // Third child exceeds the reservation.
        assert_eq!(q.spawn_child(id), Err(ThreadletError::DepthExceeded));
        q.complete_child(id).unwrap();
        q.spawn_child(id).unwrap(); // freed entry is reusable
        q.complete_child(id).unwrap();
        q.complete_child(id).unwrap();
        q.complete_root(id).unwrap();
        assert!(q.is_quiescent());
    }

    #[test]
    fn full_queue_rejects_new_roots_until_completion() {
        let mut q = ThreadletQueue::new(4);
        let a = q.admit(1).unwrap(); // 2 entries
        let _b = q.admit(1).unwrap(); // 2 entries -> full
        assert_eq!(q.admit(0), Err(ThreadletError::QueueFull));
        assert_eq!(q.rejected(), 1);
        q.complete_root(a).unwrap();
        assert!(q.admit(0).is_ok());
    }

    #[test]
    fn impossible_depth_is_programmer_error() {
        let mut q = ThreadletQueue::new(4);
        assert_eq!(q.admit(4), Err(ThreadletError::DepthExceeded));
        // Not counted as transient rejection.
        assert_eq!(q.rejected(), 0);
    }

    #[test]
    fn root_completion_waits_for_children() {
        let mut q = ThreadletQueue::new(8);
        let id = q.admit(3).unwrap();
        q.spawn_child(id).unwrap();
        q.complete_root(id).unwrap();
        assert!(!q.is_quiescent(), "child still live");
        q.complete_child(id).unwrap();
        assert!(q.is_quiescent());
        // Stale handle now errors.
        assert_eq!(q.spawn_child(id), Err(ThreadletError::UnknownReservation));
    }

    #[test]
    fn prefetch_task_pattern_never_deadlocks() {
        // prefetchTask reserves 2 entries: itself + one prefetchEdge at a
        // time (paper §5.3.2). Simulate many concurrent tasks on a small
        // queue: admissions may be refused but progress always continues.
        let mut q = ThreadletQueue::new(16);
        let mut live = Vec::new();
        let mut completed = 0;
        for step in 0..1000 {
            if step % 3 == 0 {
                if let Ok(id) = q.admit(1) {
                    q.spawn_child(id).unwrap();
                    live.push(id);
                }
            } else if let Some(id) = live.pop() {
                q.complete_child(id).unwrap();
                q.complete_root(id).unwrap();
                completed += 1;
            }
        }
        for id in live.drain(..) {
            q.complete_child(id).unwrap();
            q.complete_root(id).unwrap();
            completed += 1;
        }
        assert!(completed > 0);
        assert!(q.is_quiescent());
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(ThreadletError::QueueFull.to_string(), "threadlet queue full");
        assert!(ThreadletError::DepthExceeded.to_string().contains("depth"));
    }
}

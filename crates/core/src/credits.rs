//! Credit-based prefetch throttling (paper §5.3.1).
//!
//! Each Minnow engine starts with a fixed number of credits — the maximum
//! number of L2 cache lines its prefetcher may have outstanding/resident.
//! A credit is consumed per issued prefetch and returned when the marked
//! line is consumed by a demand access, evicted, or invalidated. The pool
//! enforces conservation: credits can never exceed the initial allotment.

/// A bounded prefetch credit pool.
#[derive(Debug, Clone)]
pub struct CreditPool {
    total: u32,
    available: u32,
    consumed: u64,
    returned: u64,
    /// Times a prefetch had to pause for lack of credits.
    starved: u64,
}

impl CreditPool {
    /// Creates a full pool of `total` credits.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` (a creditless prefetcher cannot make progress;
    /// disable prefetching instead).
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "credit pool must be non-empty");
        CreditPool {
            total,
            available: total,
            consumed: 0,
            returned: 0,
            starved: 0,
        }
    }

    /// Initial allotment.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Currently available credits.
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Consumes one credit; returns `false` (and records starvation) when
    /// none are available.
    pub fn try_consume(&mut self) -> bool {
        if self.available == 0 {
            self.starved += 1;
            return false;
        }
        self.available -= 1;
        self.consumed += 1;
        true
    }

    /// Returns `n` credits to the pool.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the return would exceed the allotment —
    /// that would mean a credit was double-returned somewhere.
    pub fn release(&mut self, n: u32) {
        debug_assert!(
            self.available + n <= self.total,
            "credit over-return: {} + {n} > {}",
            self.available,
            self.total
        );
        self.available = (self.available + n).min(self.total);
        self.returned += n as u64;
    }

    /// Total credits ever consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Total credits ever returned.
    pub fn returned(&self) -> u64 {
        self.returned
    }

    /// Times a prefetch paused for lack of credits.
    pub fn starvations(&self) -> u64 {
        self.starved
    }

    /// Conservation invariant: outstanding = consumed - returned must equal
    /// total - available. Exposed for property tests.
    pub fn check_conservation(&self) -> bool {
        self.consumed - self.returned == (self.total - self.available) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_and_release_roundtrip() {
        let mut p = CreditPool::new(4);
        assert_eq!(p.available(), 4);
        assert!(p.try_consume());
        assert!(p.try_consume());
        assert_eq!(p.available(), 2);
        p.release(1);
        assert_eq!(p.available(), 3);
        assert!(p.check_conservation());
    }

    #[test]
    fn starvation_is_counted() {
        let mut p = CreditPool::new(1);
        assert!(p.try_consume());
        assert!(!p.try_consume());
        assert!(!p.try_consume());
        assert_eq!(p.starvations(), 2);
        p.release(1);
        assert!(p.try_consume());
        assert!(p.check_conservation());
    }

    #[test]
    fn totals_track_history() {
        let mut p = CreditPool::new(8);
        for _ in 0..5 {
            assert!(p.try_consume());
        }
        p.release(3);
        assert_eq!(p.consumed(), 5);
        assert_eq!(p.returned(), 3);
        assert_eq!(p.available(), 6);
        assert!(p.check_conservation());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_pool_rejected() {
        let _ = CreditPool::new(0);
    }
}

//! The threadlet instruction set: what "fully programmable" means.
//!
//! Minnow engines execute *threadlets* — short programs stored in the
//! engine's 2KB instruction memory (paper §5, Fig. 10). Framework
//! developers write prefetch functions once per access pattern ("If users
//! require a different graph access pattern, they can write a custom
//! prefetch function", §5.3); Fig. 14's `prefetchTask`/`prefetchEdge` are
//! the stock ones.
//!
//! This module makes that programmability concrete: a tiny register ISA
//! ([`Inst`]), an assembler-level program container ([`Program`]) with an
//! instruction-memory size check, and an interpreter ([`Interp`]) that runs
//! threadlets against a [`ProgramEnv`] (address computation + value loads)
//! and emits the prefetch-line stream plus child-threadlet spawns. The
//! stock programs ([`prefetch_task_program`], [`prefetch_edge_program`])
//! express Fig. 14 exactly, and their output is validated against the
//! built-in expansion in [`crate::wdp::program_lines`].
//!
//! Registers: 8 general-purpose `r0..r7`, 64-bit. Threadlet context (64B,
//! §5.1) = registers + PC.

use minnow_sim::config::EngineParams;

/// One threadlet instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `r[d] = imm`
    LoadImm {
        /// Destination register.
        d: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `r[d] = r[a] + r[b]`
    Add {
        /// Destination register.
        d: u8,
        /// Left operand register.
        a: u8,
        /// Right operand register.
        b: u8,
    },
    /// `r[d] = r[a] * imm` (scaling indices to byte offsets)
    MulImm {
        /// Destination register.
        d: u8,
        /// Operand register.
        a: u8,
        /// Immediate multiplier.
        imm: u64,
    },
    /// Issue an L2 prefetch of the line containing address `r[a]`, and load
    /// the 64-bit value at that address into `r[d]` (engine loads double as
    /// prefetches — "helper threads call `load_L2()`", §5.3). Loads from
    /// unmapped addresses yield 0.
    LoadL2 {
        /// Destination register for the loaded value.
        d: u8,
        /// Address register.
        a: u8,
    },
    /// If `r[a] >= r[b]`, jump forward by `skip` instructions.
    BranchGe {
        /// Left compare register.
        a: u8,
        /// Right compare register.
        b: u8,
        /// Instructions to skip.
        skip: u8,
    },
    /// Jump backward by `back` instructions (loops).
    JumpBack {
        /// Instructions to jump back over.
        back: u8,
    },
    /// Spawn a child threadlet running `program`, passing `r[a]` in the
    /// child's `r0` (Fig. 14: `threadletQ.enq(PREFETCH_EDGE, edgeAddr+i)`).
    Spawn {
        /// Program id of the child.
        program: u8,
        /// Register whose value seeds the child's `r0`.
        a: u8,
    },
    /// Terminate the threadlet.
    Halt,
}

impl Inst {
    /// Encoded size in instruction memory (fixed 8-byte words, like the
    /// engine's in-order microcontroller would use).
    pub const BYTES: usize = 8;
}

/// A threadlet program (one entry in the engine's instruction memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: &'static str,
    code: Vec<Inst>,
}

impl Program {
    /// Wraps a code sequence.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `Halt` (a non-terminating threadlet
    /// would wedge the engine's in-order pipeline).
    pub fn new(name: &'static str, code: Vec<Inst>) -> Self {
        assert!(
            code.contains(&Inst::Halt),
            "threadlet program `{name}` has no Halt"
        );
        Program { name, code }
    }

    /// Program name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Bytes of instruction memory this program occupies.
    pub fn imem_bytes(&self) -> usize {
        self.code.len() * Inst::BYTES
    }
}

/// A set of programs loaded into one engine's instruction memory.
#[derive(Debug, Clone, Default)]
pub struct ProgramStore {
    programs: Vec<Program>,
}

impl ProgramStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a program; returns its id.
    pub fn load(&mut self, program: Program) -> u8 {
        self.programs.push(program);
        (self.programs.len() - 1) as u8
    }

    /// Total instruction-memory footprint.
    pub fn imem_bytes(&self) -> usize {
        self.programs.iter().map(|p| p.imem_bytes()).sum()
    }

    /// Checks the store fits the engine's instruction memory (2KB, §5.4).
    pub fn fits(&self, params: &EngineParams) -> bool {
        // The paper gives 2KB imem; data memory is separate.
        self.imem_bytes() <= 2048 && self.programs.len() <= u8::MAX as usize
            && params.data_memory_bytes >= params.context_bytes
    }

    /// Looks a program up by id.
    pub fn get(&self, id: u8) -> Option<&Program> {
        self.programs.get(id as usize)
    }
}

/// The environment a threadlet executes against: 64-bit loads from the
/// simulated address space (graph structure values).
pub trait ProgramEnv {
    /// Loads the value at `addr` (0 when unmapped).
    fn load_u64(&self, addr: u64) -> u64;
}

impl<T: minnow_sim::observer::MemoryImage> ProgramEnv for T {
    fn load_u64(&self, addr: u64) -> u64 {
        self.read_u64(addr).unwrap_or(0)
    }
}

/// Why interpretation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// Executed more steps than the fuel budget (runaway loop).
    OutOfFuel,
    /// Referenced an unknown program id in `Spawn`.
    UnknownProgram(u8),
    /// Register index out of range.
    BadRegister(u8),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::OutOfFuel => write!(f, "threadlet exceeded its fuel budget"),
            RunError::UnknownProgram(p) => write!(f, "unknown program id {p}"),
            RunError::BadRegister(r) => write!(f, "register r{r} out of range"),
        }
    }
}

impl std::error::Error for RunError {}

/// Result of running a root threadlet to completion (children included).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOutput {
    /// Prefetch-line addresses in issue order (line-aligned, deduplicated).
    pub lines: Vec<u64>,
    /// Total instructions executed across the root and all children.
    pub instructions: u64,
    /// Child threadlets spawned.
    pub spawns: u64,
    /// Maximum simultaneous spawn depth observed (for §5.3.2 reservation
    /// checks).
    pub max_depth: u32,
}

/// The threadlet interpreter.
#[derive(Debug)]
pub struct Interp<'a> {
    store: &'a ProgramStore,
    fuel: u64,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter over `store` with a per-run fuel budget.
    pub fn new(store: &'a ProgramStore, fuel: u64) -> Self {
        Interp { store, fuel }
    }

    /// Runs program `id` with `arg` in `r0`, returning the prefetch stream.
    ///
    /// # Errors
    ///
    /// [`RunError`] on runaway loops, unknown program ids, or bad registers.
    pub fn run(&self, id: u8, arg: u64, env: &dyn ProgramEnv) -> Result<RunOutput, RunError> {
        let mut out = RunOutput::default();
        let mut seen = std::collections::HashSet::new();
        let mut fuel = self.fuel;
        self.exec(id, arg, env, &mut out, &mut seen, &mut fuel, 1)?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec(
        &self,
        id: u8,
        arg: u64,
        env: &dyn ProgramEnv,
        out: &mut RunOutput,
        seen: &mut std::collections::HashSet<u64>,
        fuel: &mut u64,
        depth: u32,
    ) -> Result<(), RunError> {
        let program = self.store.get(id).ok_or(RunError::UnknownProgram(id))?;
        out.max_depth = out.max_depth.max(depth);
        let mut regs = [0u64; 8];
        regs[0] = arg;
        let mut pc = 0usize;
        let reg = |r: u8| -> Result<usize, RunError> {
            if r < 8 {
                Ok(r as usize)
            } else {
                Err(RunError::BadRegister(r))
            }
        };
        while pc < program.code.len() {
            if *fuel == 0 {
                return Err(RunError::OutOfFuel);
            }
            *fuel -= 1;
            out.instructions += 1;
            match program.code[pc] {
                Inst::LoadImm { d, imm } => regs[reg(d)?] = imm,
                Inst::Add { d, a, b } => regs[reg(d)?] = regs[reg(a)?].wrapping_add(regs[reg(b)?]),
                Inst::MulImm { d, a, imm } => regs[reg(d)?] = regs[reg(a)?].wrapping_mul(imm),
                Inst::LoadL2 { d, a } => {
                    let addr = regs[reg(a)?];
                    let line = addr & !63;
                    if seen.insert(line) {
                        out.lines.push(line);
                    }
                    regs[reg(d)?] = env.load_u64(addr);
                }
                Inst::BranchGe { a, b, skip } => {
                    if regs[reg(a)?] >= regs[reg(b)?] {
                        pc += skip as usize;
                    }
                }
                Inst::JumpBack { back } => {
                    pc = pc.saturating_sub(back as usize + 1);
                }
                Inst::Spawn { program, a } => {
                    out.spawns += 1;
                    let child_arg = regs[reg(a)?];
                    self.exec(program, child_arg, env, out, seen, fuel, depth + 1)?;
                }
                Inst::Halt => return Ok(()),
            }
            pc += 1;
        }
        Ok(())
    }
}

/// Fig. 14's `prefetchEdge(edgeAddr)`: prefetch the edge record, read its
/// destination id, prefetch the destination node.
///
/// Expects `r0 = edgeAddr`; `node_base`/`node_bytes` describe the node
/// array layout.
pub fn prefetch_edge_program(node_base: u64, node_bytes: u64) -> Program {
    Program::new(
        "prefetchEdge",
        vec![
            // r1 = *edgeAddr  (prefetches the edge line, loads dest id)
            Inst::LoadL2 { d: 1, a: 0 },
            // r2 = dest * node_bytes
            Inst::MulImm { d: 2, a: 1, imm: node_bytes },
            // r3 = node_base
            Inst::LoadImm { d: 3, imm: node_base },
            // r4 = &node[dest]
            Inst::Add { d: 4, a: 2, b: 3 },
            // prefetch destination node
            Inst::LoadL2 { d: 5, a: 4 },
            Inst::Halt,
        ],
    )
}

/// Fig. 14's `prefetchTask(taskAddr)` specialized to the CSR layout:
/// prefetch the source node, then loop over its edge slots spawning
/// `prefetchEdge` threadlets.
///
/// Expects `r0 = &node[src]`, `r1 = first edge addr`, `r2 = one-past-last
/// edge addr` (the engine front-end computes these from the task record
/// when enqueuing the threadlet). `edge_program` is the id of a loaded
/// [`prefetch_edge_program`].
pub fn prefetch_task_program(edge_bytes: u64, edge_program: u8) -> Program {
    Program::new(
        "prefetchTask",
        vec![
            // prefetch source node
            Inst::LoadL2 { d: 3, a: 0 },
            // r4 = edge stride
            Inst::LoadImm { d: 4, imm: edge_bytes },
            // loop: if r1 >= r2 -> done (skip 3: Spawn, Add, JumpBack)
            Inst::BranchGe { a: 1, b: 2, skip: 3 },
            //   spawn prefetchEdge(r1)
            Inst::Spawn { program: edge_program, a: 1 },
            //   r1 += stride
            Inst::Add { d: 1, a: 1, b: 4 },
            // back to the BranchGe
            Inst::JumpBack { back: 3 },
            Inst::Halt,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::image::GraphImage;
    use minnow_graph::{AddressMap, Csr};

    struct NullEnv;
    impl minnow_sim::observer::MemoryImage for NullEnv {
        fn read_u64(&self, _addr: u64) -> Option<u64> {
            None
        }
    }

    fn stock_store(map: &AddressMap) -> (ProgramStore, u8) {
        let mut store = ProgramStore::new();
        let edge_id = store.load(prefetch_edge_program(map.node_addr(0), map.node_bytes()));
        let task_id = store.load(prefetch_task_program(16, edge_id));
        assert!(store.fits(&EngineParams::paper()), "must fit 2KB imem");
        (store, task_id)
    }

    #[test]
    fn stock_programs_match_builtin_expansion() {
        // A node with a few edges: the bytecode's prefetch stream must equal
        // the hardcoded `program_lines` expansion for the standard pattern.
        let g = Csr::from_edges(8, &[(0, 3), (0, 5), (0, 6), (3, 0)], None);
        let map = AddressMap::standard();
        let (store, task_id) = stock_store(&map);
        let env = GraphImage::new(&g, map);
        let interp = Interp::new(&store, 10_000);

        let r = g.edge_range(0);
        let out = interp.run(task_id, map.node_addr(0), &env).unwrap();
        // Without r1/r2 seeding the task program loops zero times; the node
        // line is still prefetched.
        assert_eq!(out.lines, vec![map.node_addr(0) & !63]);

        // Drive the edge program per slot like the front-end does and
        // compare against the built-in expansion.
        let mut lines = vec![map.node_addr(0) & !63];
        let edge_interp = Interp::new(&store, 10_000);
        for e in r {
            let o = edge_interp.run(0, map.edge_addr(e), &env).unwrap();
            for l in o.lines {
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
        }
        let builtin = crate::wdp::program_lines(
            minnow_runtime::PrefetchKind::Standard,
            &g,
            &map,
            &minnow_runtime::Task::new(0, 0),
        );
        let mut a = lines.clone();
        let mut b = builtin.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "bytecode stream != builtin stream");
    }

    #[test]
    fn task_program_loops_over_edge_range() {
        // Seed the loop registers through a tiny driver program.
        let map = AddressMap::standard();
        let mut store = ProgramStore::new();
        let edge_id = store.load(prefetch_edge_program(map.node_addr(0), map.node_bytes()));
        let task_id = store.load(prefetch_task_program(16, edge_id));
        // Driver: r0 = node addr, r1 = edge lo addr, r2 = edge hi addr are
        // pre-seeded by exec() only for r0, so build a driver that sets them.
        let driver = store.load(Program::new(
            "driver",
            vec![
                Inst::LoadImm { d: 1, imm: map.edge_addr(4) },
                Inst::LoadImm { d: 2, imm: map.edge_addr(7) },
                // r0 already holds the node address.
                Inst::Spawn { program: task_id, a: 0 },
                Inst::Halt,
            ],
        ));
        // Spawn passes only r0; the child does not inherit r1/r2 — so this
        // driver exposes exactly why the front-end must pass the range in
        // the task record. Validate the *direct* path instead:
        let interp = Interp::new(&store, 10_000);
        let out = interp.run(driver, map.node_addr(2), &NullEnv).unwrap();
        // Child saw r1 = r2 = 0 -> loop exits immediately; node line only.
        assert_eq!(out.lines.len(), 1);
        assert_eq!(out.spawns, 1);
        assert_eq!(out.max_depth, 2);
    }

    #[test]
    fn interpreter_detects_runaway_loops() {
        let mut store = ProgramStore::new();
        let spin = store.load(Program::new(
            "spin",
            vec![
                Inst::LoadImm { d: 0, imm: 0 },
                Inst::JumpBack { back: 1 },
                Inst::Halt,
            ],
        ));
        let interp = Interp::new(&store, 1000);
        assert_eq!(interp.run(spin, 0, &NullEnv), Err(RunError::OutOfFuel));
    }

    #[test]
    fn unknown_program_and_bad_register_error() {
        let mut store = ProgramStore::new();
        let bad_spawn = store.load(Program::new(
            "bad-spawn",
            vec![Inst::Spawn { program: 99, a: 0 }, Inst::Halt],
        ));
        let bad_reg = store.load(Program::new(
            "bad-reg",
            vec![Inst::LoadImm { d: 9, imm: 1 }, Inst::Halt],
        ));
        let interp = Interp::new(&store, 100);
        assert_eq!(
            interp.run(bad_spawn, 0, &NullEnv),
            Err(RunError::UnknownProgram(99))
        );
        assert_eq!(
            interp.run(bad_reg, 0, &NullEnv),
            Err(RunError::BadRegister(9))
        );
    }

    #[test]
    #[should_panic(expected = "no Halt")]
    fn programs_require_halt() {
        let _ = Program::new("no-halt", vec![Inst::LoadImm { d: 0, imm: 1 }]);
    }

    #[test]
    fn store_tracks_imem_budget() {
        let mut store = ProgramStore::new();
        // 2KB / 8B = 256 instructions max.
        for _ in 0..40 {
            store.load(Program::new(
                "filler",
                vec![
                    Inst::LoadImm { d: 0, imm: 0 },
                    Inst::LoadImm { d: 1, imm: 0 },
                    Inst::LoadImm { d: 2, imm: 0 },
                    Inst::LoadImm { d: 3, imm: 0 },
                    Inst::LoadImm { d: 4, imm: 0 },
                    Inst::LoadImm { d: 5, imm: 0 },
                    Inst::Halt,
                ],
            ));
        }
        // 40 * 7 * 8 = 2240 bytes > 2048: does not fit.
        assert!(!store.fits(&EngineParams::paper()));
    }

    #[test]
    fn dedup_is_per_run() {
        let map = AddressMap::standard();
        let mut store = ProgramStore::new();
        let p = store.load(Program::new(
            "twice",
            vec![
                Inst::LoadL2 { d: 1, a: 0 },
                Inst::LoadL2 { d: 2, a: 0 },
                Inst::Halt,
            ],
        ));
        let interp = Interp::new(&store, 100);
        let out = interp.run(p, map.node_addr(0), &NullEnv).unwrap();
        assert_eq!(out.lines.len(), 1, "same line prefetched once per run");
        assert_eq!(out.instructions, 3);
    }
}

//! The Minnow engine: front-end local task queue + back-end prefetch
//! pipeline (paper §5, Fig. 10/12/13).
//!
//! The front-end is a hardened FSM holding up to 64 tasks of the current
//! highest-priority bucket; `minnow_dequeue` hits it in 10 cycles. The
//! back-end runs threadlets for worklist spills/fills and worklist-directed
//! prefetching on the engine's own timeline, off the worker's critical
//! path.

use std::collections::VecDeque;

use minnow_runtime::Task;
use minnow_sim::config::EngineParams;
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::MemoryHierarchy;

use crate::wdp::PrefetchPipeline;

/// Per-engine statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Tasks accepted directly into the local queue.
    pub local_accepts: u64,
    /// Tasks spilled to the software global worklist.
    pub spills: u64,
    /// Refill operations from the global worklist.
    pub refills: u64,
    /// Tasks streamed in by refills.
    pub refilled_tasks: u64,
    /// Dequeues served from the local queue.
    pub local_hits: u64,
    /// Dequeues that had to wait on a refill.
    pub local_misses: u64,
}

/// One core's Minnow engine.
#[derive(Debug)]
pub struct Engine {
    core: usize,
    params: EngineParams,
    local: VecDeque<Task>,
    /// Bucket priority of the local queue; `u64::MAX` = unset (accept any).
    local_bucket: u64,
    /// Engine back-end busy-until time (worklist spill/fill threadlets).
    clock: Cycle,
    /// Tasks streamed from the global worklist, landing at their fill time.
    incoming: VecDeque<(Cycle, Task)>,
    /// Worklist-directed prefetch pipeline (None = prefetching disabled).
    pipeline: Option<PrefetchPipeline>,
    stats: EngineStats,
}

impl Engine {
    /// Builds an idle engine for `core`; `credits` enables worklist-directed
    /// prefetching with that many credits.
    pub fn new(core: usize, params: EngineParams, credits: Option<u32>) -> Self {
        Engine {
            core,
            params,
            local: VecDeque::with_capacity(params.local_queue),
            local_bucket: u64::MAX,
            clock: 0,
            incoming: VecDeque::new(),
            pipeline: credits.map(|c| PrefetchPipeline::new(&params, c)),
            stats: EngineStats::default(),
        }
    }

    /// The paired core's id.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Engine parameters.
    pub fn params(&self) -> &EngineParams {
        &self.params
    }

    /// Engine back-end busy-until time.
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// Advances the engine back-end to at least `start` and occupies it for
    /// `work` cycles; returns the completion time.
    pub fn busy(&mut self, start: Cycle, work: Cycle) -> Cycle {
        self.clock = self.clock.max(start) + work;
        self.clock
    }

    /// Local-queue occupancy.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Tasks in flight from a refill.
    pub fn incoming_len(&self) -> usize {
        self.incoming.len()
    }

    /// The local queue's current bucket priority.
    pub fn local_bucket(&self) -> u64 {
        self.local_bucket
    }

    /// Statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The prefetch pipeline, when enabled.
    pub fn pipeline(&self) -> Option<&PrefetchPipeline> {
        self.pipeline.as_ref()
    }

    /// Mutable access for the offload scheduler.
    pub(crate) fn pipeline_mut(&mut self) -> Option<&mut PrefetchPipeline> {
        self.pipeline.as_mut()
    }

    /// Fig. 12 enqueue filter: accepts the task into the local queue when
    /// there is room and its bucket is at least as urgent as the local
    /// bucket. Returns `true` on acceptance (caller then queues the task's
    /// prefetch program — acceptance guarantees local consumption).
    pub fn try_local_enqueue(&mut self, task: Task, bucket: u64) -> bool {
        // Accept only while the queue is short: a full 64-entry queue of
        // already-committed tasks is a staleness window that costs work
        // efficiency; beyond the refill threshold, tasks go to the global
        // worklist where priority order is authoritative.
        let fits = self.local.len() + self.incoming.len() < self.params.refill_threshold;
        if fits && (self.local.is_empty() || bucket <= self.local_bucket) {
            self.local.push_back(task);
            self.local_bucket = if self.local.len() == 1 {
                bucket
            } else {
                self.local_bucket.min(bucket)
            };
            self.stats.local_accepts += 1;
            true
        } else {
            self.stats.spills += 1;
            false
        }
    }

    /// The task a dequeue at `now` would pop from this engine without going
    /// to the global worklist: the local-queue front, or the first in-flight
    /// refill task that has already arrived (`admit_incoming(now)` would
    /// move it to the local front). `None` when only a blocking refill could
    /// produce a task — the speculative front declines those, which is
    /// always safe (under-speculation only reduces coverage).
    pub fn peek_next(&self, now: Cycle) -> Option<Task> {
        self.local.front().copied().or_else(|| {
            self.incoming
                .front()
                .and_then(|&(at, t)| (at <= now).then_some(t))
        })
    }

    /// Pops the next local task (FIFO within the local queue, paper §5.2).
    pub fn local_pop(&mut self) -> Option<Task> {
        let t = self.local.pop_front();
        if t.is_some() {
            self.stats.local_hits += 1;
            if let Some(p) = self.pipeline.as_mut() {
                p.note_pop();
            }
            if self.local.is_empty() && self.incoming.is_empty() {
                self.local_bucket = u64::MAX;
            }
        }
        t
    }

    /// Records a dequeue that found the local queue empty.
    pub fn note_local_miss(&mut self) {
        self.stats.local_misses += 1;
    }

    /// Whether occupancy has dropped below the proactive refill threshold.
    pub fn wants_refill(&self) -> bool {
        self.local.len() + self.incoming.len() < self.params.refill_threshold
    }

    /// Queues tasks streamed from the global worklist, arriving at `at`.
    pub fn stream_in(&mut self, at: Cycle, tasks: impl IntoIterator<Item = Task>, bucket: u64) {
        let mut n = 0;
        for t in tasks {
            self.incoming.push_back((at, t));
            n += 1;
        }
        if n > 0 {
            self.stats.refills += 1;
            self.stats.refilled_tasks += n;
            self.local_bucket = bucket;
        }
    }

    /// Moves arrived incoming tasks into the local queue.
    pub fn admit_incoming(&mut self, now: Cycle) {
        while let Some(&(at, t)) = self.incoming.front() {
            if at <= now && self.local.len() < self.params.local_queue {
                self.local.push_back(t);
                self.incoming.pop_front();
            } else {
                break;
            }
        }
    }

    /// Earliest arrival among in-flight incoming tasks.
    pub fn next_incoming_at(&self) -> Option<Cycle> {
        self.incoming.front().map(|&(at, _)| at)
    }

    /// Drains the local queue and in-flight refills (the `minnow_flush`
    /// context-switch operation, paper §4.1).
    pub fn flush(&mut self) -> Vec<Task> {
        let mut out: Vec<Task> = self.local.drain(..).collect();
        out.extend(self.incoming.drain(..).map(|(_, t)| t));
        self.local_bucket = u64::MAX;
        out
    }

    /// Pumps the prefetch pipeline to `now`.
    pub fn pump_prefetch(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        let core = self.core;
        if let Some(p) = self.pipeline.as_mut() {
            p.pump(core, now, mem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_sim::SimConfig;

    fn engine() -> Engine {
        Engine::new(0, EngineParams::paper(), None)
    }

    #[test]
    fn local_enqueue_respects_bucket_filter() {
        let mut e = engine();
        assert!(e.try_local_enqueue(Task::new(8, 0), 2));
        assert_eq!(e.local_bucket(), 2);
        // Lower-priority (bigger bucket) task must spill.
        assert!(!e.try_local_enqueue(Task::new(16, 1), 4));
        assert_eq!(e.stats().spills, 1);
        // Higher-priority task is accepted and updates the bucket.
        assert!(e.try_local_enqueue(Task::new(2, 2), 0));
        assert_eq!(e.local_bucket(), 0);
        // Contents unchanged: FIFO pop returns the first accepted task.
        assert_eq!(e.local_pop().unwrap().node, 0);
    }

    #[test]
    fn full_local_queue_spills() {
        let mut e = engine();
        let cap = e.params().refill_threshold;
        for i in 0..cap as u32 {
            assert!(e.try_local_enqueue(Task::new(0, i), 0));
        }
        assert!(!e.try_local_enqueue(Task::new(0, 99), 0));
        assert_eq!(e.stats().spills, 1);
        assert_eq!(e.local_len(), cap);
    }

    #[test]
    fn pop_to_empty_resets_bucket() {
        let mut e = engine();
        e.try_local_enqueue(Task::new(4, 0), 1);
        assert_eq!(e.local_pop().unwrap().node, 0);
        assert_eq!(e.local_bucket(), u64::MAX);
        assert!(e.local_pop().is_none());
        // Any bucket is now acceptable again.
        assert!(e.try_local_enqueue(Task::new(400, 1), 100));
    }

    #[test]
    fn stream_in_arrives_over_time() {
        let mut e = engine();
        e.stream_in(500, [Task::new(0, 1), Task::new(0, 2)], 0);
        assert_eq!(e.incoming_len(), 2);
        e.admit_incoming(100);
        assert_eq!(e.local_len(), 0, "not arrived yet");
        assert_eq!(e.next_incoming_at(), Some(500));
        e.admit_incoming(500);
        assert_eq!(e.local_len(), 2);
        assert_eq!(e.incoming_len(), 0);
    }

    #[test]
    fn wants_refill_below_threshold() {
        let mut e = engine();
        assert!(e.wants_refill());
        for i in 0..16 {
            e.try_local_enqueue(Task::new(0, i), 0);
        }
        assert!(!e.wants_refill());
    }

    #[test]
    fn flush_returns_everything() {
        let mut e = engine();
        e.try_local_enqueue(Task::new(0, 1), 0);
        e.stream_in(1000, [Task::new(0, 2)], 0);
        let flushed = e.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(e.local_len() + e.incoming_len(), 0);
        assert_eq!(e.local_bucket(), u64::MAX);
    }

    #[test]
    fn busy_advances_engine_clock() {
        let mut e = engine();
        assert_eq!(e.busy(100, 50), 150);
        assert_eq!(e.busy(0, 10), 160, "engine cannot travel back in time");
        assert_eq!(e.clock(), 160);
    }

    #[test]
    fn prefetch_pipeline_is_optional() {
        let cfg = SimConfig::small(1);
        let mut off = Engine::new(0, cfg.engine, None);
        assert!(off.pipeline().is_none());
        let mut mem = MemoryHierarchy::new(&cfg);
        off.pump_prefetch(100, &mut mem); // no-op, must not panic
        let on = Engine::new(0, cfg.engine, Some(32));
        assert!(on.pipeline().is_some());
    }
}

//! End-to-end validation of worklist offload + worklist-directed
//! prefetching against the software baseline, using a self-contained
//! BFS-like workload (the real paper workloads live in `minnow-algos`).

use std::sync::Arc;

use minnow_core::offload::{MinnowConfig, MinnowScheduler};
use minnow_graph::gen::uniform::{self, UniformConfig};
use minnow_graph::{AddressMap, Csr};
use minnow_runtime::sim_exec::{run, ExecConfig, RunReport};
use minnow_runtime::{Operator, PolicyKind, PrefetchKind, SoftwareScheduler, Task, TaskCtx};
use minnow_sim::hierarchy::MemoryHierarchy;

#[derive(Debug)]
struct Bfs {
    graph: Arc<Csr>,
    dist: Vec<u64>,
}

impl Bfs {
    fn new(graph: Arc<Csr>) -> Self {
        let n = graph.nodes();
        Bfs {
            graph,
            dist: vec![u64::MAX; n],
        }
    }
}

impl Operator for Bfs {
    fn name(&self) -> &'static str {
        "bfs-e2e"
    }
    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }
    fn initial_tasks(&self) -> Vec<Task> {
        vec![Task::new(0, 0)]
    }
    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(0)
    }
    fn prefetch_kind(&self) -> PrefetchKind {
        PrefetchKind::Standard
    }
    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(12);
        if self.dist[v as usize] > task.priority {
            self.dist[v as usize] = task.priority;
            ctx.store_node(v);
        } else if self.dist[v as usize] < task.priority {
            return;
        }
        let d = self.dist[v as usize];
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let n = graph.edge_dst(e);
            ctx.load_edge(e, n);
            ctx.load_node(n);
            ctx.add_branches(1);
            ctx.add_instrs(9);
            if self.dist[n as usize] > d + 1 {
                self.dist[n as usize] = d + 1;
                ctx.atomic_node(n);
                ctx.push(Task::new(d + 1, n));
            }
        }
    }
}

fn graph() -> Arc<Csr> {
    Arc::new(uniform::generate(&UniformConfig::new(3000, 4), 11))
}

fn run_software_cfg(threads: usize) -> (RunReport, Vec<u64>) {
    let cfg = ExecConfig::new(threads);
    let mut op = Bfs::new(graph());
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = SoftwareScheduler::new(PolicyKind::Obim(0).build(), threads);
    let r = run(&mut op, &mut sched, &mut mem, &cfg);
    (r, op.dist)
}

fn run_minnow(threads: usize, minnow: MinnowConfig) -> (RunReport, Vec<u64>) {
    let cfg = ExecConfig::new(threads);
    let g = graph();
    let mut op = Bfs::new(g.clone());
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        g,
        AddressMap::standard(),
        PrefetchKind::Standard,
        threads,
        minnow,
    );
    let r = run(&mut op, &mut sched, &mut mem, &cfg);
    (r, op.dist)
}

#[test]
fn all_executors_agree_on_distances() {
    let (_, soft) = run_software_cfg(4);
    let (_, minnow) = run_minnow(4, MinnowConfig::no_prefetch(0));
    let (_, wdp) = run_minnow(4, MinnowConfig::paper(0));
    let g = graph();
    let (levels, _, _) = minnow_graph::stats::bfs_levels(&g, 0);
    for (v, &l) in levels.iter().enumerate() {
        let expect = if l == usize::MAX { u64::MAX } else { l as u64 };
        assert_eq!(soft[v], expect, "software wrong at node {v}");
        assert_eq!(minnow[v], expect, "minnow wrong at node {v}");
        assert_eq!(wdp[v], expect, "minnow+wdp wrong at node {v}");
    }
}

#[test]
fn offload_cuts_worklist_cycles() {
    let (soft, _) = run_software_cfg(8);
    let (minnow, _) = run_minnow(8, MinnowConfig::no_prefetch(0));
    assert!(!soft.timed_out && !minnow.timed_out);
    let soft_frac = soft.breakdown.fraction(soft.breakdown.worklist);
    let minnow_frac = minnow.breakdown.fraction(minnow.breakdown.worklist);
    assert!(
        minnow_frac < soft_frac,
        "worklist share must drop: software {soft_frac:.3} vs minnow {minnow_frac:.3}"
    );
    assert!(
        minnow.makespan < soft.makespan,
        "offload must be faster: {} vs {}",
        minnow.makespan,
        soft.makespan
    );
}

#[test]
fn wdp_cuts_l2_mpki_and_makespan() {
    let (plain, _) = run_minnow(8, MinnowConfig::no_prefetch(0));
    let (wdp, _) = run_minnow(8, MinnowConfig::paper(0));
    assert!(
        wdp.mpki() < plain.mpki() * 0.7,
        "WDP must cut MPKI: {:.2} vs {:.2}",
        wdp.mpki(),
        plain.mpki()
    );
    assert!(
        wdp.makespan < plain.makespan,
        "WDP must be faster: {} vs {}",
        wdp.makespan,
        plain.makespan
    );
    assert!(wdp.prefetch_fills > 0);
    assert!(
        wdp.prefetch_efficiency() > 0.8,
        "efficiency {:.3}",
        wdp.prefetch_efficiency()
    );
}

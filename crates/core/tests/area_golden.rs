//! Golden area/power numbers for the §5.4 model, per engine
//! configuration, plus monotonicity properties.
//!
//! The design-space explorer uses this model as one half of its
//! objective (speedup vs. area), so a silent drift here would silently
//! reshape every Pareto frontier the explorer emits. These tests pin
//! the exact byte inventory and mm² figures for a grid of engine
//! configurations; if the model changes deliberately, regenerate the
//! table below and say so in the commit.

use minnow_core::area::{
    engine_sram_bytes, estimate, machine_estimate, Process, SKYLAKE_SLICE_MM2,
};
use minnow_sim::config::EngineParams;
use proptest::prelude::*;

/// The paper's 256KB L2 with 64B lines.
const PAPER_L2_LINES: usize = 256 * 1024 / 64;

/// One engine configuration in the golden grid.
fn configured(local_queue: usize, threadlet_queue: usize, load_buffer: usize, dmem: usize) -> EngineParams {
    let mut p = EngineParams::paper();
    p.local_queue = local_queue;
    p.threadlet_queue = threadlet_queue;
    p.load_buffer = load_buffer;
    p.data_memory_bytes = dmem;
    p
}

/// Golden SRAM inventories: (local_queue, threadlet_queue, load_buffer,
/// dmem_bytes, l2_lines) -> exact engine SRAM bytes.
///
/// Derivation (the model's fixed costs): 16B/task local queue +
/// 8B/entry threadlet queue + 16B/entry load-buffer CAM + 2KB imem +
/// dmem + ceil(l2_lines/8) prefetch-metadata bytes.
const GOLDEN_SRAM_BYTES: &[(usize, usize, usize, usize, usize, usize)] = &[
    // The paper's evaluated engine: 1KB + 1KB + 0.5KB + 2KB + 2KB + 512B.
    (64, 128, 32, 2048, PAPER_L2_LINES, 7168),
    // Halved front-end queue.
    (32, 128, 32, 2048, PAPER_L2_LINES, 6656),
    // Quarter-size engine on a quarter-size L2 (the explorer's smallest).
    (16, 32, 8, 512, 1024, 3328),
    // Doubled everything on a doubled L2.
    (128, 256, 64, 4096, 8192, 12288),
];

#[test]
fn golden_sram_inventories() {
    for &(lq, tq, lb, dmem, lines, want) in GOLDEN_SRAM_BYTES {
        let got = engine_sram_bytes(&configured(lq, tq, lb, dmem), lines);
        assert_eq!(
            got, want,
            "SRAM bytes drifted for lq={lq} tq={tq} lb={lb} dmem={dmem} lines={lines}"
        );
    }
}

#[test]
fn golden_area_numbers_per_process() {
    // The area model is pure arithmetic over the SRAM inventory:
    // sram_kb * density + control logic. Pin the paper engine exactly.
    let paper = estimate(&EngineParams::paper(), PAPER_L2_LINES, Process::Nm28);
    assert!((paper.sram_mm2 - 7.0 * 0.003).abs() < 1e-12, "28nm SRAM = {}", paper.sram_mm2);
    assert!((paper.logic_mm2 - 0.4).abs() < 1e-12);
    assert!((paper.total_mm2() - 0.421).abs() < 1e-12);

    let scaled = estimate(&EngineParams::paper(), PAPER_L2_LINES, Process::Nm14);
    assert!((scaled.sram_mm2 - 7.0 * 0.0008).abs() < 1e-12, "14nm SRAM = {}", scaled.sram_mm2);
    assert!((scaled.logic_mm2 - 0.1).abs() < 1e-12);
    assert!((scaled.total_mm2() - 0.1056).abs() < 1e-12);
    // The paper's headline claim, machine-checked: < 1% of a slice.
    assert!((scaled.slice_overhead() - 0.1056 / SKYLAKE_SLICE_MM2).abs() < 1e-15);
    assert!(scaled.slice_overhead() < 0.01);
}

#[test]
fn golden_machine_estimates() {
    // 16 per-core engines: 16x one engine, and per-slice overhead is
    // identical to the single-engine figure (one engine per slice).
    let one = estimate(&EngineParams::paper(), PAPER_L2_LINES, Process::Nm14);
    let m = machine_estimate(&EngineParams::paper(), PAPER_L2_LINES, 16, 1, Process::Nm14);
    assert!((m.total_mm2() - 16.0 * one.total_mm2()).abs() < 1e-12);
    assert!((m.overhead_of_slices(16) - one.slice_overhead()).abs() < 1e-15);

    // Shared engines (4 cores each): a quarter of the engines.
    let shared = machine_estimate(&EngineParams::paper(), PAPER_L2_LINES, 16, 4, Process::Nm14);
    assert!((shared.total_mm2() - 4.0 * one.total_mm2()).abs() < 1e-12);

    // Ragged division rounds the engine count up.
    let ragged = machine_estimate(&EngineParams::paper(), PAPER_L2_LINES, 5, 4, Process::Nm14);
    assert!((ragged.total_mm2() - 2.0 * one.total_mm2()).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Growing any buffer, the L2, or the thread count never shrinks
    /// the configuration's area — the explorer's cost axis is monotone
    /// in every structural parameter.
    #[test]
    fn area_is_monotone_in_structures_and_threads(
        local_queue in 1usize..512,
        threadlet_queue in 1usize..1024,
        load_buffer in 1usize..256,
        dmem in 64usize..16384,
        l2_lines in 64usize..16384,
        threads in 1usize..64,
        grow_axis in 0usize..6,
    ) {
        let base = configured(local_queue, threadlet_queue, load_buffer, dmem);
        let mut grown = base;
        let mut grown_lines = l2_lines;
        let mut grown_threads = threads;
        match grow_axis {
            0 => grown.local_queue *= 2,
            1 => grown.threadlet_queue *= 2,
            2 => grown.load_buffer *= 2,
            3 => grown.data_memory_bytes *= 2,
            4 => grown_lines *= 2,
            _ => grown_threads += 1,
        }
        for process in [Process::Nm28, Process::Nm14] {
            let a = machine_estimate(&base, l2_lines, threads, 1, process);
            let b = machine_estimate(&grown, grown_lines, grown_threads, 1, process);
            prop_assert!(
                b.total_mm2() >= a.total_mm2(),
                "axis {grow_axis}: {} < {}",
                b.total_mm2(),
                a.total_mm2()
            );
            prop_assert!(b.sram_mm2 >= a.sram_mm2);
            prop_assert!(b.logic_mm2 >= a.logic_mm2);
        }
    }

    /// Sharing engines across more cores never increases area.
    #[test]
    fn sharing_engines_never_costs_more(
        threads in 1usize..64,
        group_a in 1usize..8,
        group_b in 1usize..8,
    ) {
        let (small, large) = (group_a.min(group_b), group_a.max(group_b));
        let p = EngineParams::paper();
        let a = machine_estimate(&p, PAPER_L2_LINES, threads, small, Process::Nm14);
        let b = machine_estimate(&p, PAPER_L2_LINES, threads, large, Process::Nm14);
        prop_assert!(b.total_mm2() <= a.total_mm2());
    }
}

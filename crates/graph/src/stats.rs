//! Graph statistics: the columns of the paper's Table 1.

use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::dsu::Dsu;
use crate::gen::rng;

/// Summary statistics of a graph (Table 1 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Estimated diameter (double-sweep BFS lower bound).
    pub est_diameter: usize,
    /// Largest out-degree ("Largest Node" in Table 1).
    pub max_degree: usize,
    /// Number of connected components (treating edges as undirected).
    pub components: usize,
    /// In-memory size in bytes under the paper's layout (32B nodes, 16B
    /// edges).
    pub size_bytes: u64,
}

impl GraphStats {
    /// Computes statistics. `seed` picks the BFS start for the diameter
    /// estimate (results are deterministic in the seed).
    pub fn compute(g: &Csr, seed: u64) -> Self {
        GraphStats {
            nodes: g.nodes(),
            edges: g.edges(),
            est_diameter: estimate_diameter(g, seed),
            max_degree: g.max_degree().1,
            components: components(g),
            size_bytes: g.nodes() as u64 * 32 + g.edges() as u64 * 16,
        }
    }
}

/// BFS from `src`; returns `(distances, farthest_node, eccentricity)` where
/// unreachable nodes have distance `usize::MAX`.
pub fn bfs_levels(g: &Csr, src: NodeId) -> (Vec<usize>, NodeId, usize) {
    let mut dist = vec![usize::MAX; g.nodes()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut far = (src, 0usize);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &n in g.neighbors(v) {
            if dist[n as usize] == usize::MAX {
                dist[n as usize] = d + 1;
                if d + 1 > far.1 {
                    far = (n, d + 1);
                }
                queue.push_back(n);
            }
        }
    }
    (dist, far.0, far.1)
}

/// Double-sweep diameter estimate: BFS from a random node, then BFS from the
/// farthest node found; the second eccentricity lower-bounds the diameter
/// and is typically tight on road-like graphs.
pub fn estimate_diameter(g: &Csr, seed: u64) -> usize {
    if g.nodes() == 0 {
        return 0;
    }
    let mut r = rng(seed);
    let start = r.gen_range(0..g.nodes()) as NodeId;
    let (_, far, _) = bfs_levels(g, start);
    let (_, _, ecc) = bfs_levels(g, far);
    ecc
}

/// Number of connected components (undirected view).
pub fn components(g: &Csr) -> usize {
    let mut d = Dsu::new(g.nodes());
    for v in 0..g.nodes() as NodeId {
        for &n in g.neighbors(v) {
            d.union(v, n);
        }
    }
    d.components()
}

/// Degree histogram in power-of-two buckets: `hist[k]` counts nodes with
/// out-degree in `[2^k, 2^(k+1))`; `hist[0]` also counts degree-0 and 1.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.nodes() as NodeId {
        let d = g.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros() - 1) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{self, GridConfig};

    #[test]
    fn path_graph_diameter_is_exact() {
        // 1 x 20 grid = path of 20 nodes, diameter 19.
        let g = grid::generate(&GridConfig::new(20, 1), 0);
        assert_eq!(estimate_diameter(&g, 0), 19);
    }

    #[test]
    fn bfs_levels_reports_unreachable() {
        let g = Csr::from_edges(3, &[(0, 1)], None);
        let (dist, _, ecc) = bfs_levels(&g, 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], usize::MAX);
        assert_eq!(ecc, 1);
    }

    #[test]
    fn components_counts_islands() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)], None);
        assert_eq!(components(&g), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn stats_compute_is_consistent() {
        let g = grid::generate(&GridConfig::new(10, 10), 1);
        let s = GraphStats::compute(&g, 3);
        assert_eq!(s.nodes, 100);
        assert_eq!(s.edges, g.edges());
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.est_diameter, 18);
        assert_eq!(s.size_bytes, 100 * 32 + g.edges() as u64 * 16);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let g = Csr::from_edges(
            4,
            &[(0, 1), (1, 0), (1, 2), (1, 3), (2, 0), (2, 1), (2, 3), (3, 0)],
            None,
        );
        // degrees: 1, 3, 3, 1
        let h = degree_histogram(&g);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 2);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &[], None);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.est_diameter, 0);
        assert_eq!(s.components, 0);
        assert!(degree_histogram(&g).is_empty());
    }
}

//! # minnow-graph — CSR graphs, generators, and statistics
//!
//! Provides the graph substrate for the Minnow reproduction:
//!
//! * [`csr`] — compressed sparse row graphs with optional edge weights,
//!   sorted-adjacency support (binary-search `has_edge` for triangle
//!   counting), and symmetrization,
//! * [`layout`] — the synthetic address map that places nodes (32B/64B) and
//!   edges (16B) into the simulated 64-bit address space, matching the
//!   paper's in-memory CSR layout (§6.2),
//! * [`gen`] — seeded generators reproducing the *structural axes* of the
//!   paper's Table 1 inputs: high-diameter grids (road networks), uniform
//!   random graphs, RMAT/Kronecker scale-free graphs (Graph500), power-law
//!   graphs (wiki), and bipartite rating graphs (amazon),
//! * [`inputs`] — named, scaled-down analogues of the seven Table 1 inputs,
//! * [`io`] — external graph formats (edge list, Matrix Market, Graph500
//!   binary tuples, DIMACS) unified behind [`io::GraphSource`],
//! * [`ingest`] — bounded-memory streaming CSR construction over those
//!   formats (external sort; scale-20+ inputs build without materializing
//!   the edge list),
//! * [`image`] — the `minnow-csr-image/v1` on-disk CSR format with
//!   zero-copy mmap loading, plus the simulated-memory [`image::GraphImage`],
//! * [`stats`] — degree distributions and double-sweep diameter estimation
//!   (regenerates Table 1's columns),
//! * [`dsu`] — a union-find used by reference implementations and tests.
//!
//! ## Example
//!
//! ```
//! use minnow_graph::gen::grid;
//! use minnow_graph::stats::GraphStats;
//!
//! let g = grid::generate(&grid::GridConfig::new(16, 16).weighted(1..=9), 42);
//! let s = GraphStats::compute(&g, 42);
//! assert_eq!(s.nodes, 256);
//! assert!(s.est_diameter >= 30); // high-diameter road-network analogue
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod csr;
pub mod dsu;
pub mod gen;
pub mod image;
pub mod ingest;
pub mod inputs;
pub mod io;
pub mod layout;
mod mmap;
pub mod reorder;
pub mod stats;

pub use crate::csr::{Csr, NodeId};
pub use crate::layout::AddressMap;

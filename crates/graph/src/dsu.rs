//! Disjoint-set union (union-find) with path halving and union by size.
//!
//! Used by the connected-components reference implementation and by tests
//! that validate generator connectivity.

/// A union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path-halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut d = Dsu::new(4);
        assert_eq!(d.components(), 4);
        assert!(!d.same(0, 1));
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0), "repeated union is a no-op");
        assert_eq!(d.components(), 2);
        assert!(d.union(0, 3));
        assert_eq!(d.components(), 1);
        assert!(d.same(1, 2));
        assert_eq!(d.set_size(2), 4);
    }

    #[test]
    fn transitive_chains_collapse() {
        let mut d = Dsu::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        assert_eq!(d.components(), 1);
        assert!(d.same(0, 99));
        assert_eq!(d.set_size(50), 100);
    }
}

//! Named, scaled-down analogues of the paper's Table 1 inputs.
//!
//! The original inputs are 150MB–1GB downloads (road networks, Wikipedia
//! dumps, Amazon ratings). Experiments here run on generated graphs that
//! preserve each input's *structural role* in the evaluation:
//!
//! | paper input          | role                                  | analogue                      |
//! |----------------------|---------------------------------------|-------------------------------|
//! | `USA-road-d.W`       | high diameter, degree ≤ 9 (SSSP)      | weighted grid w/ shortcuts    |
//! | `r4-2e23`            | uniform random, degree ~4 (BFS)       | uniform random                |
//! | `rmat16-2e22`        | scale-free, 27%-of-edges hub (G500)   | Graph500 RMAT                 |
//! | `wikipedia-20051105` | power-law web graph (CC)              | Chung-Lu/Zipf                 |
//! | `wiki-Talk`          | sparse power-law, strong hubs (PR)    | Chung-Lu/Zipf, higher alpha   |
//! | `com-dblp-sym`       | small community graph, fits LLC (TC)  | small power-law, sorted       |
//! | `amazon-ratings`     | bipartite ratings (BC)                | Zipf bipartite                |
//!
//! `scale = 1.0` yields graphs of ~10^4–10^5 nodes that run in milliseconds
//! under the timing simulator; the experiment harness documents the scaling
//! in EXPERIMENTS.md.

use crate::csr::Csr;
use crate::gen::bipartite::{self, BipartiteConfig};
use crate::gen::grid::{self, GridConfig};
use crate::gen::powerlaw::{self, PowerLawConfig};
use crate::gen::rmat::{self, RmatConfig};
use crate::gen::uniform::{self, UniformConfig};

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(16)
}

/// `USA-road-d.W` analogue: weighted near-planar grid, high diameter.
pub fn usa_road(scale: f64, seed: u64) -> Csr {
    let side = (scaled(16_384, scale) as f64).sqrt().round() as usize;
    grid::generate(
        &GridConfig::new(side.max(4), side.max(4))
            .weighted(1..=9)
            .shortcuts(0.02),
        seed,
    )
}

/// `r4-2e23` analogue: uniform random graph, average degree ~4.
pub fn r4(scale: f64, seed: u64) -> Csr {
    uniform::generate(&UniformConfig::new(scaled(24_576, scale), 4), seed)
}

/// `rmat16-2e22` analogue: Graph500 Kronecker graph with a dominant hub.
pub fn rmat16(scale: f64, seed: u64) -> Csr {
    // Pick the nearest power-of-two scale for the requested size.
    let nodes = scaled(8_192, scale);
    let s = (nodes as f64).log2().round().clamp(8.0, 22.0) as u32;
    rmat::generate(&RmatConfig::graph500(s, 16), seed)
}

/// `wikipedia-20051105` analogue: power-law web graph.
pub fn wikipedia(scale: f64, seed: u64) -> Csr {
    powerlaw::generate(
        &PowerLawConfig::new(scaled(8_192, scale), 12, 1.05),
        seed,
    )
}

/// `wiki-Talk` analogue: sparse power-law graph with strong hubs.
pub fn wiki_talk(scale: f64, seed: u64) -> Csr {
    powerlaw::generate(&PowerLawConfig::new(scaled(12_288, scale), 2, 1.4), seed)
}

/// `com-dblp-sym` analogue: small symmetric community graph with sorted
/// adjacency (the TC input; deliberately small enough to fit in the scaled
/// LLC, as in the paper §6.2).
pub fn com_dblp(scale: f64, seed: u64) -> Csr {
    let mut g = powerlaw::generate(&PowerLawConfig::new(scaled(2_048, scale), 5, 0.9), seed);
    g.sort_adjacency();
    g
}

/// `amazon-ratings` analogue: bipartite user-item rating graph.
pub fn amazon_ratings(scale: f64, seed: u64) -> Csr {
    bipartite::generate(&amazon_config(scale), seed)
}

/// The bipartite configuration behind [`amazon_ratings`] (exposed so the BC
/// workload can query partitions).
pub fn amazon_config(scale: f64) -> BipartiteConfig {
    BipartiteConfig::new(scaled(6_144, scale), scaled(2_048, scale), 3, 1.1)
}

/// A named input with its generator, for harness iteration.
#[derive(Debug, Clone)]
pub struct InputSpec {
    /// Paper input name.
    pub name: &'static str,
    /// The generated graph.
    pub graph: Csr,
}

/// Generates all seven Table 1 analogues at the given scale.
pub fn all(scale: f64, seed: u64) -> Vec<InputSpec> {
    vec![
        InputSpec { name: "USA-road-d.W", graph: usa_road(scale, seed) },
        InputSpec { name: "r4-2e23", graph: r4(scale, seed + 1) },
        InputSpec { name: "rmat16-2e22", graph: rmat16(scale, seed + 2) },
        InputSpec { name: "wikipedia-20051105", graph: wikipedia(scale, seed + 3) },
        InputSpec { name: "wiki-Talk", graph: wiki_talk(scale, seed + 4) },
        InputSpec { name: "com-dblp-sym", graph: com_dblp(scale, seed + 5) },
        InputSpec { name: "amazon-ratings", graph: amazon_ratings(scale, seed + 6) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn all_inputs_are_valid_and_distinctive() {
        for spec in all(0.25, 42) {
            spec.graph.validate().unwrap();
            assert!(spec.graph.nodes() > 0, "{} empty", spec.name);
        }
    }

    #[test]
    fn road_has_highest_diameter() {
        let road = GraphStats::compute(&usa_road(0.25, 1), 0);
        let rmat = GraphStats::compute(&rmat16(0.25, 1), 0);
        assert!(
            road.est_diameter > 5 * rmat.est_diameter.max(1),
            "road {} vs rmat {}",
            road.est_diameter,
            rmat.est_diameter
        );
    }

    #[test]
    fn rmat_has_biggest_hub_share() {
        let g = rmat16(0.5, 7);
        let share = g.max_degree().1 as f64 / g.edges() as f64;
        let road = usa_road(0.5, 7);
        let road_share = road.max_degree().1 as f64 / road.edges() as f64;
        assert!(share > 20.0 * road_share, "rmat {share:.4} road {road_share:.6}");
    }

    #[test]
    fn dblp_is_sorted_for_tc() {
        assert!(com_dblp(0.25, 3).is_sorted());
    }

    #[test]
    fn scale_changes_size() {
        assert!(r4(0.1, 1).nodes() < r4(1.0, 1).nodes());
    }
}

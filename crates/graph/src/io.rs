//! Graph file I/O: the external formats behind `minnow-sweep --input`.
//!
//! Four external formats are unified behind [`GraphSource`], each with a
//! streaming parser (used by the bounded-memory [`crate::ingest`] pipeline),
//! an in-memory reader, and a writer:
//!
//! * **Edge list** ([`GraphSource::EdgeList`]): one `src dst [weight]`
//!   triple per line, **0-based** ids. `#` starts a comment that runs to
//!   end of line (so SNAP-style `# Nodes: … Edges: …` headers are skipped),
//!   and lines beginning with `%` are skipped too. The node count is one
//!   past the largest id seen — a 1-indexed file therefore loads with an
//!   extra isolated node 0 rather than shifting ids; convert such files
//!   explicitly if that matters.
//! * **Matrix Market** ([`GraphSource::MatrixMarket`]): `%%MatrixMarket
//!   matrix coordinate <pattern|integer|real> <general|symmetric>` with
//!   **1-based** ids (stored 0-based); `symmetric` emits both directions.
//! * **Graph500 binary** ([`GraphSource::Graph500`]): the reference-code
//!   edge tuple layout — 16-byte records of two little-endian `u64` node
//!   ids, 0-based, unweighted.
//! * **DIMACS** ([`GraphSource::Dimacs`]): 9th DIMACS Implementation
//!   Challenge shortest-path format (`c` comments, one `p sp <nodes>
//!   <arcs>` problem line, `a <src> <dst> <weight>` arcs, **1-based** ids,
//!   stored 0-based) — the paper's `USA-road-d.*` inputs ship in it.
//!
//! [`GraphSource::Image`] rounds out the enum for dispatch purposes; binary
//! CSR images are loaded through [`crate::image::load_image`] rather than an
//! edge-stream parser.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::csr::{Csr, NodeId};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure (including non-UTF8 bytes in text formats).
    Io(std::io::Error),
    /// Structural problem with the input text.
    Format {
        /// 1-based line number (record number for binary formats).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Structural problem with a binary CSR image.
    Image {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Format { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ParseError::Image { message } => write!(f, "csr image error: {message}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Format { .. } | ParseError::Image { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn format_err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Format {
        line,
        message: message.into(),
    }
}

/// The external graph formats `minnow` can consume, plus the binary CSR
/// image. See the module docs for each format's shape and id base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSource {
    /// `src dst [weight]` per line, 0-based, `#`/`%` comments.
    EdgeList,
    /// Matrix Market coordinate format, 1-based.
    MatrixMarket,
    /// Graph500-style binary edge tuples (two LE `u64`s per edge).
    Graph500,
    /// 9th DIMACS Challenge `.gr` shortest-path format, 1-based.
    Dimacs,
    /// `minnow-csr-image/v1` binary CSR image.
    Image,
}

impl GraphSource {
    /// Every source, in CLI listing order.
    pub const ALL: [GraphSource; 5] = [
        GraphSource::EdgeList,
        GraphSource::MatrixMarket,
        GraphSource::Graph500,
        GraphSource::Dimacs,
        GraphSource::Image,
    ];

    /// Canonical CLI label.
    pub fn label(self) -> &'static str {
        match self {
            GraphSource::EdgeList => "edge-list",
            GraphSource::MatrixMarket => "matrix-market",
            GraphSource::Graph500 => "graph500",
            GraphSource::Dimacs => "dimacs",
            GraphSource::Image => "image",
        }
    }

    /// Parses a CLI spelling (canonical labels plus common aliases like
    /// `el`, `mtx`, `g500`, `gr`, `mcsr`).
    pub fn parse(s: &str) -> Option<GraphSource> {
        match s {
            "edge-list" | "edgelist" | "el" | "tsv" | "txt" => Some(GraphSource::EdgeList),
            "matrix-market" | "matrixmarket" | "mtx" => Some(GraphSource::MatrixMarket),
            "graph500" | "g500" | "bin" => Some(GraphSource::Graph500),
            "dimacs" | "gr" => Some(GraphSource::Dimacs),
            "image" | "mcsr" | "csr" => Some(GraphSource::Image),
            _ => None,
        }
    }

    /// Infers the source from a path's extension; unknown or missing
    /// extensions default to the edge-list format.
    pub fn detect(path: &Path) -> GraphSource {
        match path.extension().and_then(|e| e.to_str()) {
            Some("mtx") => GraphSource::MatrixMarket,
            Some("g500") | Some("bin") => GraphSource::Graph500,
            Some("gr") | Some("dimacs") => GraphSource::Dimacs,
            Some("mcsr") | Some("csrimg") => GraphSource::Image,
            _ => GraphSource::EdgeList,
        }
    }
}

/// What a streaming parse learned about its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeStreamInfo {
    /// Edges delivered to the sink.
    pub edges: u64,
    /// Node count declared by the format's header, if it has one.
    pub declared_nodes: Option<u64>,
    /// Whether the input carried explicit weights (DIMACS always does;
    /// Graph500 never does; edge lists and `.mtx` depend on the content).
    pub weighted: bool,
}

/// Streams the edges of a text or binary edge format into `sink` without
/// materializing the edge list — the front half of [`crate::ingest`].
///
/// The sink receives `(src, dst, weight)` with 0-based ids (weight 1 when
/// the input has none) and may abort the parse by returning an error.
///
/// # Errors
///
/// Returns [`ParseError`] for I/O failures and malformed input, and for
/// [`GraphSource::Image`], which holds a finished CSR rather than an edge
/// stream (load it with [`crate::image::load_image`]).
pub fn stream_edges<R, F>(
    source: GraphSource,
    reader: R,
    sink: F,
) -> Result<EdgeStreamInfo, ParseError>
where
    R: Read,
    F: FnMut(NodeId, NodeId, u32) -> Result<(), ParseError>,
{
    match source {
        GraphSource::EdgeList => stream_edge_list(reader, sink),
        GraphSource::MatrixMarket => stream_matrix_market(reader, sink),
        GraphSource::Graph500 => stream_graph500(reader, sink),
        GraphSource::Dimacs => stream_dimacs(reader, sink),
        GraphSource::Image => Err(ParseError::Image {
            message: "a CSR image is not an edge stream; load it with load_image".into(),
        }),
    }
}

fn check_id_range(lineno: usize, src: u64, dst: u64) -> Result<(), ParseError> {
    if src > u32::MAX as u64 - 1 || dst > u32::MAX as u64 - 1 {
        return Err(format_err(lineno, "node id exceeds u32 range"));
    }
    Ok(())
}

fn stream_edge_list<R, F>(reader: R, mut sink: F) -> Result<EdgeStreamInfo, ParseError>
where
    R: Read,
    F: FnMut(NodeId, NodeId, u32) -> Result<(), ParseError>,
{
    let reader = BufReader::new(reader);
    let mut info = EdgeStreamInfo {
        edges: 0,
        declared_nodes: None,
        weighted: false,
    };
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        if body.trim_start().starts_with('%') {
            continue;
        }
        let mut parts = body.split_whitespace();
        let Some(src) = parts.next() else { continue };
        let src: u64 = src
            .parse()
            .map_err(|_| format_err(lineno, "bad source id"))?;
        let dst: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format_err(lineno, "missing target id"))?;
        let w: u32 = match parts.next() {
            Some(s) => {
                info.weighted = true;
                s.parse().map_err(|_| format_err(lineno, "bad weight"))?
            }
            None => 1,
        };
        check_id_range(lineno, src, dst)?;
        sink(src as NodeId, dst as NodeId, w)?;
        info.edges += 1;
    }
    Ok(info)
}

fn stream_dimacs<R, F>(reader: R, mut sink: F) -> Result<EdgeStreamInfo, ParseError>
where
    R: Read,
    F: FnMut(NodeId, NodeId, u32) -> Result<(), ParseError>,
{
    let reader = BufReader::new(reader);
    let mut nodes: Option<u64> = None;
    let mut info = EdgeStreamInfo {
        edges: 0,
        declared_nodes: None,
        weighted: true, // DIMACS arcs always carry a weight
    };
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            None | Some("c") => continue,
            Some("p") => {
                if nodes.is_some() {
                    return Err(format_err(lineno, "duplicate problem line"));
                }
                if parts.next() != Some("sp") {
                    return Err(format_err(lineno, "expected `p sp <nodes> <arcs>`"));
                }
                let n: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format_err(lineno, "bad node count"))?;
                let _m: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format_err(lineno, "bad arc count"))?;
                nodes = Some(n);
                info.declared_nodes = Some(n);
            }
            Some("a") => {
                let n = nodes.ok_or_else(|| format_err(lineno, "arc before problem line"))?;
                let mut field = |name: &str| {
                    parts
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| format_err(lineno, format!("bad {name}")))
                };
                let (src, dst, w) = (field("source")?, field("target")?, field("weight")?);
                if src == 0 || dst == 0 || src > n || dst > n {
                    return Err(format_err(lineno, "node id out of range (1-based)"));
                }
                check_id_range(lineno, src - 1, dst - 1)?;
                sink(
                    (src - 1) as NodeId,
                    (dst - 1) as NodeId,
                    w.min(u32::MAX as u64) as u32,
                )?;
                info.edges += 1;
            }
            Some(other) => {
                return Err(format_err(lineno, format!("unknown line type `{other}`")));
            }
        }
    }
    if nodes.is_none() {
        return Err(format_err(0, "missing problem line"));
    }
    Ok(info)
}

fn stream_matrix_market<R, F>(reader: R, mut sink: F) -> Result<EdgeStreamInfo, ParseError>
where
    R: Read,
    F: FnMut(NodeId, NodeId, u32) -> Result<(), ParseError>,
{
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, banner) = lines
        .next()
        .ok_or_else(|| format_err(1, "empty file (missing MatrixMarket banner)"))?;
    let banner = banner?;
    let b: Vec<&str> = banner.split_whitespace().collect();
    if b.first().map(|s| s.to_ascii_lowercase()) != Some("%%matrixmarket".into()) {
        return Err(format_err(1, "missing %%MatrixMarket banner"));
    }
    if b.len() < 5 {
        return Err(format_err(
            1,
            "banner must be `%%MatrixMarket matrix coordinate <field> <symmetry>`",
        ));
    }
    if !b[1].eq_ignore_ascii_case("matrix") || !b[2].eq_ignore_ascii_case("coordinate") {
        return Err(format_err(
            1,
            format!("only `matrix coordinate` is supported, got `{} {}`", b[1], b[2]),
        ));
    }
    let pattern = match b[3].to_ascii_lowercase().as_str() {
        "pattern" => true,
        "integer" | "real" => false,
        other => {
            return Err(format_err(
                1,
                format!("unsupported field `{other}` (want pattern|integer|real)"),
            ))
        }
    };
    let symmetric = match b[4].to_ascii_lowercase().as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(format_err(
                1,
                format!("unsupported symmetry `{other}` (want general|symmetric)"),
            ))
        }
    };

    // Comments, then the size line: rows cols nnz.
    let mut size: Option<(u64, u64, u64)> = None;
    let mut size_line = 0usize;
    for (idx, line) in lines.by_ref() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let mut field = |name: &str| {
            parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format_err(lineno, format!("bad {name} in size line")))
        };
        size = Some((field("row count")?, field("column count")?, field("entry count")?));
        size_line = lineno;
        break;
    }
    let (rows, cols, nnz) = size.ok_or_else(|| format_err(0, "missing size line"))?;

    let mut info = EdgeStreamInfo {
        edges: 0,
        declared_nodes: Some(rows.max(cols)),
        weighted: !pattern,
    };
    let mut entries = 0u64;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if entries == nnz {
            return Err(format_err(
                lineno,
                format!("more than the declared {nnz} entries"),
            ));
        }
        let mut parts = trimmed.split_whitespace();
        let mut field = |name: &str| {
            parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format_err(lineno, format!("bad {name}")))
        };
        let (i, j) = (field("row index")?, field("column index")?);
        if i == 0 || j == 0 || i > rows || j > cols {
            return Err(format_err(
                lineno,
                format!("entry ({i}, {j}) out of range for a {rows} x {cols} matrix (1-based)"),
            ));
        }
        let w: u32 = if pattern {
            1
        } else {
            let raw = parts
                .next()
                .ok_or_else(|| format_err(lineno, "missing entry value"))?;
            match raw.parse::<u64>() {
                Ok(v) => v.min(u32::MAX as u64) as u32,
                Err(_) => {
                    let v: f64 = raw
                        .parse()
                        .map_err(|_| format_err(lineno, "bad entry value"))?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(format_err(lineno, "entry value must be finite and >= 0"));
                    }
                    v.round().min(u32::MAX as f64) as u32
                }
            }
        };
        check_id_range(lineno, i - 1, j - 1)?;
        entries += 1;
        sink((i - 1) as NodeId, (j - 1) as NodeId, w)?;
        info.edges += 1;
        if symmetric && i != j {
            sink((j - 1) as NodeId, (i - 1) as NodeId, w)?;
            info.edges += 1;
        }
    }
    if entries != nnz {
        return Err(format_err(
            size_line,
            format!("size line declares {nnz} entries but the file has {entries}"),
        ));
    }
    Ok(info)
}

fn stream_graph500<R, F>(reader: R, mut sink: F) -> Result<EdgeStreamInfo, ParseError>
where
    R: Read,
    F: FnMut(NodeId, NodeId, u32) -> Result<(), ParseError>,
{
    let mut reader = BufReader::new(reader);
    let mut info = EdgeStreamInfo {
        edges: 0,
        declared_nodes: None,
        weighted: false,
    };
    let mut rec = [0u8; 16];
    loop {
        // Fill a whole record, tolerating short reads; a partial record at
        // EOF is a truncation error, a clean EOF ends the stream.
        let mut filled = 0;
        while filled < rec.len() {
            match reader.read(&mut rec[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if filled == 0 {
            break;
        }
        let record = info.edges as usize + 1;
        if filled < rec.len() {
            return Err(format_err(
                record,
                format!(
                    "truncated record ({filled} trailing bytes; the file length \
                     must be a multiple of 16)"
                ),
            ));
        }
        let src = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let dst = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        check_id_range(record, src, dst)?;
        sink(src as NodeId, dst as NodeId, 1)?;
        info.edges += 1;
    }
    Ok(info)
}

/// Collects a streamed format into an in-memory CSR, preserving the file's
/// edge order. `declared_nodes` (if any) wins over the largest id seen.
fn collect_stream<R: Read>(source: GraphSource, reader: R) -> Result<Csr, ParseError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut weights: Vec<u32> = Vec::new();
    let mut max_node: u64 = 0;
    let info = stream_edges(source, reader, |u, v, w| {
        max_node = max_node.max(u as u64).max(v as u64);
        edges.push((u, v));
        weights.push(w);
        Ok(())
    })?;
    let seen = if edges.is_empty() { 0 } else { max_node + 1 };
    let n = info.declared_nodes.unwrap_or(0).max(seen) as usize;
    Ok(if info.weighted {
        Csr::from_edges(n, &edges, Some(&weights))
    } else {
        Csr::from_edges(n, &edges, None)
    })
}

/// Reads a DIMACS `.gr` shortest-path graph.
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure, missing/duplicate problem line,
/// out-of-range node ids, or malformed arc lines.
pub fn read_dimacs<R: Read>(reader: R) -> Result<Csr, ParseError> {
    collect_stream(GraphSource::Dimacs, reader)
}

/// Writes a graph in DIMACS `.gr` format (1-based ids; unweighted graphs get
/// weight 1).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dimacs<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "c generated by minnow-graph")?;
    writeln!(writer, "p sp {} {}", graph.nodes(), graph.edges())?;
    for v in 0..graph.nodes() as NodeId {
        for (_, u, w) in graph.edges_of(v) {
            writeln!(writer, "a {} {} {}", v + 1, u + 1, w)?;
        }
    }
    Ok(())
}

/// Reads a plain edge list (`src dst [weight]` per line, **0-based** ids).
///
/// Comment handling: everything after a `#` on any line is ignored (so
/// SNAP-style `# Nodes: … Edges: …` headers are silently skipped), and
/// lines whose first non-blank character is `%` are skipped whole. The
/// graph is weighted iff at least one line carries a third column; lines
/// without one default to weight 1. The node count is one past the largest
/// id seen — ids are **not** re-based, so a 1-indexed file gains an
/// isolated node 0 (see the module docs).
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure (including non-UTF8 bytes) or
/// malformed lines; node ids above `u32::MAX - 1` are rejected.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Csr, ParseError> {
    collect_stream(GraphSource::EdgeList, reader)
}

/// Writes a plain edge list (0-based ids, one `src dst [weight]` per line;
/// the weight column appears only for weighted graphs).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    let weighted = graph.is_weighted();
    for v in 0..graph.nodes() as NodeId {
        for (_, u, w) in graph.edges_of(v) {
            if weighted {
                writeln!(writer, "{v} {u} {w}")?;
            } else {
                writeln!(writer, "{v} {u}")?;
            }
        }
    }
    Ok(())
}

/// Reads a Matrix Market coordinate file (1-based ids, stored 0-based;
/// `symmetric` inputs emit both edge directions; `pattern` inputs are
/// unweighted, `integer`/`real` values become `u32` weights).
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure, a malformed banner/size line,
/// out-of-range entries (including any entry against a zero-node header),
/// or an entry count that contradicts the size line.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, ParseError> {
    collect_stream(GraphSource::MatrixMarket, reader)
}

/// Writes a Matrix Market coordinate file (`integer general` for weighted
/// graphs, `pattern general` otherwise; ids 1-based on disk).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_matrix_market<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    let weighted = graph.is_weighted();
    writeln!(
        writer,
        "%%MatrixMarket matrix coordinate {} general",
        if weighted { "integer" } else { "pattern" }
    )?;
    writeln!(writer, "% generated by minnow-graph")?;
    writeln!(writer, "{} {} {}", graph.nodes(), graph.nodes(), graph.edges())?;
    for v in 0..graph.nodes() as NodeId {
        for (_, u, w) in graph.edges_of(v) {
            if weighted {
                writeln!(writer, "{} {} {}", v + 1, u + 1, w)?;
            } else {
                writeln!(writer, "{} {}", v + 1, u + 1)?;
            }
        }
    }
    Ok(())
}

/// Reads Graph500-style binary edge tuples (16-byte records of two
/// little-endian `u64` node ids; unweighted).
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure, a file length that is not a
/// multiple of 16, or node ids above `u32::MAX - 1`.
pub fn read_graph500<R: Read>(reader: R) -> Result<Csr, ParseError> {
    collect_stream(GraphSource::Graph500, reader)
}

/// Writes Graph500-style binary edge tuples. Weights, having no place in
/// the format, are dropped.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_graph500<W: Write>(graph: &Csr, mut writer: W) -> std::io::Result<()> {
    for v in 0..graph.nodes() as NodeId {
        for (_, u, _) in graph.edges_of(v) {
            writer.write_all(&(v as u64).to_le_bytes())?;
            writer.write_all(&(u as u64).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads any graph file, inferring the format from the extension unless
/// `source` pins it. Text/binary edge formats preserve file edge order;
/// images load via [`crate::image::load_image`] in the given mode.
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure or malformed content.
pub fn read_file(
    path: &Path,
    source: Option<GraphSource>,
    mode: crate::image::LoadMode,
) -> Result<Csr, ParseError> {
    let source = source.unwrap_or_else(|| GraphSource::detect(path));
    match source {
        GraphSource::Image => crate::image::load_image(path, mode),
        other => collect_stream(other, std::fs::File::open(path)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_GR: &str = "\
c tiny road graph
p sp 3 4
a 1 2 7
a 2 1 7
a 2 3 2
a 3 2 2
";

    #[test]
    fn dimacs_roundtrip() {
        let g = read_dimacs(SAMPLE_GR.as_bytes()).unwrap();
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.edge_weight(0), 7);

        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_rejects_bad_ids() {
        let err = read_dimacs("p sp 2 1\na 1 5 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn dimacs_requires_problem_line_first() {
        let err = read_dimacs("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("before problem line"));
        let err = read_dimacs("c only comments\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing problem line"));
    }

    #[test]
    fn dimacs_rejects_duplicate_problem_line() {
        let err = read_dimacs("p sp 1 0\np sp 2 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn dimacs_declared_nodes_win_over_max_seen_id() {
        // Five declared nodes, arcs touching only the first two: the
        // remaining nodes must exist as isolated nodes.
        let g = read_dimacs("p sp 5 1\na 1 2 3\n".as_bytes()).unwrap();
        assert_eq!(g.nodes(), 5);
        assert_eq!(g.edges(), 1);
    }

    #[test]
    fn edge_list_infers_nodes_and_weights() {
        let g = read_edge_list("0 1 5\n1 2 3\n# comment\n2 0 1\n".as_bytes()).unwrap();
        assert_eq!(g.nodes(), 3);
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0), 5);

        let unweighted = read_edge_list("0 3\n3 0\n".as_bytes()).unwrap();
        assert_eq!(unweighted.nodes(), 4);
        assert!(!unweighted.is_weighted());
    }

    #[test]
    fn edge_list_is_zero_based_and_does_not_rebase() {
        // A "1-indexed" file: ids 1..=3. Node 0 exists but is isolated —
        // the documented behavior (ids are taken literally).
        let g = read_edge_list("1 2\n2 3\n3 1\n".as_bytes()).unwrap();
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edge_list_skips_snap_headers_and_inline_comments() {
        let text = "\
# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 3 Edges: 2
% percent comments too
0 1   # trailing comment
1 2
";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.edges(), 2);
        assert!(!g.is_weighted());
    }

    #[test]
    fn edge_list_empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.nodes(), 0);
        assert_eq!(g.edges(), 0);
    }

    #[test]
    fn edge_list_reports_line_numbers() {
        let err = read_edge_list("0 1\nbogus line\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn edge_list_rejects_overflowing_ids() {
        let text = format!("0 {}\n", u64::from(u32::MAX));
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("u32 range"), "{err}");
        let err = read_edge_list("0 99999999999999999999\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing target id"), "{err}");
    }

    #[test]
    fn edge_list_rejects_non_utf8_bytes() {
        let bytes: &[u8] = &[b'0', b' ', b'1', b'\n', 0xff, 0xfe, b'\n'];
        let err = read_edge_list(bytes).unwrap_err();
        assert!(matches!(err, ParseError::Io(_)), "{err}");
    }

    #[test]
    fn edge_list_roundtrip_weighted_and_not() {
        for g in [
            read_edge_list("0 1 5\n1 2 3\n2 0 1\n".as_bytes()).unwrap(),
            read_edge_list("0 3\n3 0\n1 2\n".as_bytes()).unwrap(),
        ] {
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let back = read_edge_list(buf.as_slice()).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn matrix_market_reads_general_and_symmetric() {
        let general = "\
%%MatrixMarket matrix coordinate integer general
% a comment
3 3 2
1 2 5
3 1 7
";
        let g = read_matrix_market(general.as_bytes()).unwrap();
        assert_eq!(g.nodes(), 3);
        assert_eq!(g.edges(), 2);
        assert!(g.is_weighted());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.edge_weight(0), 5);

        let symmetric = "\
%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
";
        let g = read_matrix_market(symmetric.as_bytes()).unwrap();
        assert_eq!(g.edges(), 3, "off-diagonal doubled, diagonal not");
        assert!(!g.is_weighted());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[2]);
    }

    #[test]
    fn matrix_market_roundtrip() {
        let g = read_matrix_market(
            "%%MatrixMarket matrix coordinate integer general\n3 3 3\n1 2 5\n2 3 2\n3 1 9\n"
                .as_bytes(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn matrix_market_rejects_malformed_input() {
        let err = read_matrix_market("not a banner\n1 1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("banner"), "{err}");

        let err = read_matrix_market(
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n".as_bytes(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("declares 1"), "{err}");

        let err = read_matrix_market(
            "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 5\n2 1 4\n".as_bytes(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("more than the declared"), "{err}");

        // Zero-node header with an entry: out of range, not a panic.
        let err = read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n0 0 1\n1 1\n".as_bytes(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn matrix_market_zero_size_is_empty_graph() {
        let g = read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n".as_bytes(),
        )
        .unwrap();
        assert_eq!(g.nodes(), 0);
        assert_eq!(g.edges(), 0);
    }

    #[test]
    fn graph500_roundtrip_and_truncation() {
        let g = read_edge_list("0 2\n2 1\n1 0\n".as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_graph500(&g, &mut buf).unwrap();
        assert_eq!(buf.len(), 3 * 16);
        let back = read_graph500(buf.as_slice()).unwrap();
        assert_eq!(g, back);

        let err = read_graph500(&buf[..buf.len() - 5]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn graph500_rejects_wide_ids() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_graph500(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("u32 range"), "{err}");
    }

    #[test]
    fn source_labels_parse_and_detect() {
        for s in GraphSource::ALL {
            assert_eq!(GraphSource::parse(s.label()), Some(s));
        }
        assert_eq!(GraphSource::parse("mtx"), Some(GraphSource::MatrixMarket));
        assert_eq!(GraphSource::parse("nope"), None);
        assert_eq!(
            GraphSource::detect(Path::new("a/b/wiki.mtx")),
            GraphSource::MatrixMarket
        );
        assert_eq!(
            GraphSource::detect(Path::new("edges.g500")),
            GraphSource::Graph500
        );
        assert_eq!(
            GraphSource::detect(Path::new("USA-road-d.NY.gr")),
            GraphSource::Dimacs
        );
        assert_eq!(
            GraphSource::detect(Path::new("graph.mcsr")),
            GraphSource::Image
        );
        assert_eq!(
            GraphSource::detect(Path::new("plain.txt")),
            GraphSource::EdgeList
        );
        assert_eq!(
            GraphSource::detect(Path::new("no_extension")),
            GraphSource::EdgeList
        );
    }

    #[test]
    fn stream_edges_refuses_image_source() {
        let err = stream_edges(GraphSource::Image, &[][..], |_, _, _| Ok(())).unwrap_err();
        assert!(matches!(err, ParseError::Image { .. }), "{err}");
    }

    #[test]
    fn generated_graph_survives_dimacs_roundtrip() {
        use crate::gen::grid::{self, GridConfig};
        let g = grid::generate(&GridConfig::new(6, 6).weighted(1..=9), 3);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(g.nodes(), g2.nodes());
        assert_eq!(g.edges(), g2.edges());
        for v in 0..g.nodes() as NodeId {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }
}

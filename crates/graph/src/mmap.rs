//! Minimal read-only file memory-mapping, used by the on-disk CSR image
//! loader ([`crate::image`]) for its zero-copy path.
//!
//! The workspace is dependency-free by policy, so this wraps the raw
//! `mmap(2)`/`munmap(2)` symbols directly (std already links libc on every
//! unix target). Non-unix builds report [`std::io::ErrorKind::Unsupported`]
//! and callers fall back to buffered reads.

use std::fs::File;
use std::io;

/// A read-only, private mapping of an entire file.
///
/// The mapping is immutable (`PROT_READ`, `MAP_PRIVATE`) and unmapped on
/// drop. Empty files cannot be mapped (`mmap` rejects zero-length maps);
/// callers are expected to hold a header-sized minimum anyway.
#[derive(Debug)]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only for its entire lifetime and `mmap`'d
// memory is not tied to the creating thread.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` in its entirety.
    ///
    /// # Errors
    ///
    /// Fails when the file is empty, when `mmap` itself fails, or — with
    /// [`std::io::ErrorKind::Unsupported`] — on non-unix targets.
    pub fn of_file(file: &File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
        })?;
        sys::map(file, len).map(|ptr| Mapping { ptr, len })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` mapped, readable bytes until drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Base address of the mapping.
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a live mapping).
    #[allow(dead_code)] // paired with `len` for the conventional API shape
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    pub fn map(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of an open fd; the
        // kernel validates the fd and length and reports failure via
        // MAP_FAILED (-1).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map` and are unmapped
        // exactly once (Mapping is not Clone).
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    pub fn map(_file: &File, _len: usize) -> io::Result<*const u8> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory-mapping is only implemented on unix targets",
        ))
    }

    pub fn unmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("minnow-mmap-test-{}-{tag}", std::process::id()))
    }

    #[test]
    #[cfg(unix)]
    fn maps_file_contents() {
        let path = temp_path("contents");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(b"hello mapping"))
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = Mapping::of_file(&file).unwrap();
        assert_eq!(map.bytes(), b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_empty_file() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        assert!(Mapping::of_file(&file).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

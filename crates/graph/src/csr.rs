//! Compressed sparse row (CSR) graph representation.
//!
//! The paper stores inputs "in memory in standard CSR format, with 32B nodes
//! (64B for TC) and 16B edges" (§6.2). This module provides the logical CSR;
//! [`crate::layout`] maps it onto simulated addresses.
//!
//! A `Csr` owns its three sections (`row_ptr`, `col`, `weights`) either as
//! plain vectors or as byte ranges of a memory-mapped
//! [`minnow-csr-image/v1`](crate::image) file — the zero-copy load path. The
//! two representations are indistinguishable through the public API and
//! compare equal when their logical contents match.

use std::ops::Range;
use std::sync::Arc;

use crate::mmap::Mapping;

/// Node identifier. All generated graphs fit comfortably in 32 bits.
pub type NodeId = u32;

/// Where a [`Csr`]'s sections live.
#[derive(Debug, Clone)]
enum Store {
    /// Sections held in owned vectors (every mutable path).
    Owned {
        row_ptr: Vec<u64>,
        col: Vec<NodeId>,
        weights: Vec<u32>,
    },
    /// Sections borrowed from a shared file mapping (zero-copy image load).
    Mapped(MappedSections),
}

/// Byte ranges of the three CSR sections inside one shared [`Mapping`].
///
/// Offsets are validated (alignment + bounds) by [`Csr::from_mapped`], so the
/// slice reinterpretations below are sound. Only meaningful on little-endian
/// hosts; the image loader refuses the mapped path elsewhere.
#[derive(Debug, Clone)]
pub(crate) struct MappedSections {
    map: Arc<Mapping>,
    /// (byte offset, element count) of the `u64` row-pointer section.
    row_ptr: (usize, usize),
    /// (byte offset, element count) of the `u32` column section.
    col: (usize, usize),
    /// (byte offset, element count) of the `u32` weight section (count 0
    /// for unweighted graphs).
    weights: (usize, usize),
}

impl MappedSections {
    fn row_ptr(&self) -> &[u64] {
        // SAFETY: offset/length bounds and 8-byte alignment were checked in
        // `Csr::from_mapped`; the mapping is immutable and outlives `self`.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_ptr().add(self.row_ptr.0) as *const u64,
                self.row_ptr.1,
            )
        }
    }

    fn col(&self) -> &[NodeId] {
        // SAFETY: as above, with 4-byte alignment.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_ptr().add(self.col.0) as *const NodeId,
                self.col.1,
            )
        }
    }

    fn weights(&self) -> &[u32] {
        // SAFETY: as above, with 4-byte alignment.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_ptr().add(self.weights.0) as *const u32,
                self.weights.1,
            )
        }
    }
}

/// A directed graph in CSR form with optional `u32` edge weights.
///
/// Invariants (checked in debug builds and by the property-test suite):
/// * `row_ptr` has `nodes() + 1` entries, is monotonically non-decreasing,
///   starts at 0, and ends at `edges()`,
/// * every column entry is `< nodes()`,
/// * `weights` is either empty or exactly `edges()` long.
#[derive(Debug, Clone)]
pub struct Csr {
    store: Store,
    sorted: bool,
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.sorted == other.sorted
            && self.row_ptr() == other.row_ptr()
            && self.col() == other.col()
            && self.weights() == other.weights()
    }
}

impl Eq for Csr {}

impl Csr {
    /// Builds a CSR from an edge list. Edges keep their relative order
    /// within each source node.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= nodes`, or if `weights` is `Some` with a
    /// length different from `edges.len()`.
    pub fn from_edges(nodes: usize, edges: &[(NodeId, NodeId)], weights: Option<&[u32]>) -> Self {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge required");
        }
        let mut degree = vec![0u64; nodes];
        for &(u, v) in edges {
            assert!((u as usize) < nodes, "source {u} out of range");
            assert!((v as usize) < nodes, "target {v} out of range");
            degree[u as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        let mut acc = 0u64;
        row_ptr.push(0);
        for d in &degree {
            acc += d;
            row_ptr.push(acc);
        }
        let mut cursor: Vec<u64> = row_ptr[..nodes].to_vec();
        let mut col = vec![0 as NodeId; edges.len()];
        let mut out_w = if weights.is_some() {
            vec![0u32; edges.len()]
        } else {
            Vec::new()
        };
        for (i, &(u, v)) in edges.iter().enumerate() {
            let slot = cursor[u as usize] as usize;
            col[slot] = v;
            if let Some(w) = weights {
                out_w[slot] = w[i];
            }
            cursor[u as usize] += 1;
        }
        Csr {
            store: Store::Owned {
                row_ptr,
                col,
                weights: out_w,
            },
            sorted: false,
        }
    }

    /// Assembles a CSR directly from its three sections, validating every
    /// invariant (including, when `sorted` is claimed, that each adjacency
    /// list really is ascending — [`Csr::has_edge`] relies on it).
    ///
    /// This is the constructor behind the streaming ingest pipeline
    /// ([`crate::ingest`]) and the buffered image load path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn from_parts(
        row_ptr: Vec<u64>,
        col: Vec<NodeId>,
        weights: Vec<u32>,
        sorted: bool,
    ) -> Result<Csr, String> {
        let g = Csr {
            store: Store::Owned {
                row_ptr,
                col,
                weights,
            },
            sorted,
        };
        g.validate()?;
        if sorted {
            g.check_sorted()?;
        }
        Ok(g)
    }

    /// Assembles a CSR over byte ranges of a shared file mapping — the
    /// zero-copy image load path. Validates alignment and bounds of the
    /// ranges plus every logical invariant.
    ///
    /// `row_ptr`/`col`/`weights` are `(byte_offset, element_count)` pairs
    /// into `map`.
    pub(crate) fn from_mapped(
        map: Arc<Mapping>,
        row_ptr: (usize, usize),
        col: (usize, usize),
        weights: (usize, usize),
        sorted: bool,
    ) -> Result<Csr, String> {
        let check = |name: &str, (off, count): (usize, usize), width: usize| {
            let bytes = count
                .checked_mul(width)
                .ok_or_else(|| format!("{name} section size overflows"))?;
            let end = off
                .checked_add(bytes)
                .ok_or_else(|| format!("{name} section end overflows"))?;
            if end > map.len() {
                return Err(format!("{name} section extends past the mapping"));
            }
            if !(map.as_ptr() as usize + off).is_multiple_of(width) {
                return Err(format!("{name} section is misaligned"));
            }
            Ok(())
        };
        check("row_ptr", row_ptr, 8)?;
        check("col", col, 4)?;
        check("weights", weights, 4)?;
        if row_ptr.1 == 0 {
            return Err("row_ptr must have at least one entry".into());
        }
        let g = Csr {
            store: Store::Mapped(MappedSections {
                map,
                row_ptr,
                col,
                weights,
            }),
            sorted,
        };
        g.validate()?;
        if sorted {
            g.check_sorted()?;
        }
        Ok(g)
    }

    fn row_ptr(&self) -> &[u64] {
        match &self.store {
            Store::Owned { row_ptr, .. } => row_ptr,
            Store::Mapped(m) => m.row_ptr(),
        }
    }

    fn col(&self) -> &[NodeId] {
        match &self.store {
            Store::Owned { col, .. } => col,
            Store::Mapped(m) => m.col(),
        }
    }

    fn weights(&self) -> &[u32] {
        match &self.store {
            Store::Owned { weights, .. } => weights,
            Store::Mapped(m) => m.weights(),
        }
    }

    /// The three raw sections `(row_ptr, col, weights)`; `weights` is empty
    /// for unweighted graphs. This is the serialization surface used by the
    /// on-disk image writer and the conformance tests.
    pub fn raw_parts(&self) -> (&[u64], &[NodeId], &[u32]) {
        (self.row_ptr(), self.col(), self.weights())
    }

    /// Whether the sections are borrowed from a file mapping rather than
    /// owned vectors.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, Store::Mapped(_))
    }

    /// Converts mapped sections into owned vectors (no-op when already
    /// owned). Mutating operations call this first.
    fn make_owned(&mut self) {
        if let Store::Mapped(m) = &self.store {
            self.store = Store::Owned {
                row_ptr: m.row_ptr().to_vec(),
                col: m.col().to_vec(),
                weights: m.weights().to_vec(),
            };
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.row_ptr().len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.col().len()
    }

    /// Whether edge weights are present.
    pub fn is_weighted(&self) -> bool {
        !self.weights().is_empty()
    }

    /// Whether every adjacency list is sorted (enables [`Csr::has_edge`]).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let r = self.edge_range(v);
        r.end - r.start
    }

    /// Range of edge indices belonging to `v`.
    pub fn edge_range(&self, v: NodeId) -> Range<usize> {
        let v = v as usize;
        assert!(v < self.nodes(), "node {v} out of range");
        let row_ptr = self.row_ptr();
        row_ptr[v] as usize..row_ptr[v + 1] as usize
    }

    /// Neighbors of `v` as a slice.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.col()[self.edge_range(v)]
    }

    /// Destination of edge index `e`.
    pub fn edge_dst(&self, e: usize) -> NodeId {
        self.col()[e]
    }

    /// Weight of edge index `e` (1 for unweighted graphs).
    pub fn edge_weight(&self, e: usize) -> u32 {
        let weights = self.weights();
        if weights.is_empty() {
            1
        } else {
            weights[e]
        }
    }

    /// Iterates `(edge_index, dst, weight)` for node `v`.
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = (usize, NodeId, u32)> + '_ {
        self.edge_range(v)
            .map(move |e| (e, self.edge_dst(e), self.edge_weight(e)))
    }

    /// Sorts every adjacency list (with its weights) ascending by target,
    /// enabling binary-search membership tests. Mapped graphs are copied
    /// into owned storage first.
    pub fn sort_adjacency(&mut self) {
        self.make_owned();
        let Store::Owned {
            row_ptr,
            col,
            weights,
        } = &mut self.store
        else {
            unreachable!("make_owned just ran");
        };
        for v in 0..row_ptr.len() - 1 {
            let r = row_ptr[v] as usize..row_ptr[v + 1] as usize;
            if weights.is_empty() {
                col[r].sort_unstable();
            } else {
                let mut pairs: Vec<(NodeId, u32)> = col[r.clone()]
                    .iter()
                    .copied()
                    .zip(weights[r.clone()].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                for (i, (c, w)) in pairs.into_iter().enumerate() {
                    col[r.start + i] = c;
                    weights[r.start + i] = w;
                }
            }
        }
        self.sorted = true;
    }

    /// Binary-search membership test (the TC inner loop, paper §6.1).
    ///
    /// Returns the probed edge indices (for memory-trace generation) and
    /// whether the edge exists.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency lists have not been sorted via
    /// [`Csr::sort_adjacency`].
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> (bool, Vec<usize>) {
        assert!(self.sorted, "has_edge requires sorted adjacency");
        let r = self.edge_range(u);
        let col = self.col();
        let mut probes = Vec::new();
        let (mut lo, mut hi) = (r.start, r.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push(mid);
            match col[mid].cmp(&v) {
                std::cmp::Ordering::Equal => return (true, probes),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        (false, probes)
    }

    /// Returns the symmetric closure of this graph (each directed edge gets
    /// its reverse, duplicates removed). Weights are carried over; when both
    /// directions exist with different weights the smaller wins.
    pub fn symmetrize(&self) -> Csr {
        let mut pairs: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(self.edges() * 2);
        for v in 0..self.nodes() as NodeId {
            for (_, dst, w) in self.edges_of(v) {
                pairs.push((v, dst, w));
                pairs.push((dst, v, w));
            }
        }
        pairs.sort_unstable();
        pairs.dedup_by(|a, b| {
            if a.0 == b.0 && a.1 == b.1 {
                b.2 = b.2.min(a.2);
                true
            } else {
                false
            }
        });
        let edges: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(u, v, _)| (u, v)).collect();
        let weights: Vec<u32> = pairs.iter().map(|&(_, _, w)| w).collect();
        let mut g = if self.is_weighted() {
            Csr::from_edges(self.nodes(), &edges, Some(&weights))
        } else {
            Csr::from_edges(self.nodes(), &edges, None)
        };
        g.sorted = true; // built from a sorted, deduped pair list
        g
    }

    /// Largest out-degree and the node that has it; `(0, 0)` for an empty
    /// graph.
    pub fn max_degree(&self) -> (NodeId, usize) {
        let mut best = (0 as NodeId, 0usize);
        for v in 0..self.nodes() as NodeId {
            let d = self.out_degree(v);
            if d > best.1 {
                best = (v, d);
            }
        }
        best
    }

    /// Validates the CSR invariants, returning a description of the first
    /// violation. Used by property tests and the generator test-suite.
    pub fn validate(&self) -> Result<(), String> {
        let row_ptr = self.row_ptr();
        let col = self.col();
        let weights = self.weights();
        if row_ptr.is_empty() {
            return Err("row_ptr must have at least one entry".into());
        }
        if row_ptr[0] != 0 {
            return Err("row_ptr must start at 0".into());
        }
        if *row_ptr.last().unwrap() != col.len() as u64 {
            return Err("row_ptr must end at edge count".into());
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr must be non-decreasing".into());
        }
        let n = self.nodes() as NodeId;
        if let Some(bad) = col.iter().find(|&&c| c >= n) {
            return Err(format!("column {bad} out of range (n={n})"));
        }
        if !weights.is_empty() && weights.len() != col.len() {
            return Err("weights length must match edges".into());
        }
        Ok(())
    }

    /// Checks that every adjacency list really is ascending (the claim the
    /// `sorted` flag makes).
    fn check_sorted(&self) -> Result<(), String> {
        let row_ptr = self.row_ptr();
        let col = self.col();
        for v in 0..self.nodes() {
            let r = row_ptr[v] as usize..row_ptr[v + 1] as usize;
            if col[r].windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("adjacency of node {v} is not sorted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> {1,2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], None)
    }

    #[test]
    fn from_edges_builds_correct_adjacency() {
        let g = diamond();
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 2);
        g.validate().unwrap();
    }

    #[test]
    fn weights_follow_their_edges() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (1, 0)], Some(&[7, 3, 9]));
        assert!(g.is_weighted());
        let got: Vec<(NodeId, u32)> = g.edges_of(0).map(|(_, d, w)| (d, w)).collect();
        assert_eq!(got, vec![(2, 7), (1, 3)]);
        assert_eq!(g.edge_weight(2), 9);
    }

    #[test]
    fn unweighted_edges_weigh_one() {
        let g = diamond();
        assert_eq!(g.edge_weight(0), 1);
    }

    #[test]
    fn sort_adjacency_enables_binary_search() {
        let mut g = Csr::from_edges(5, &[(0, 4), (0, 1), (0, 3), (1, 2)], None);
        g.sort_adjacency();
        assert!(g.is_sorted());
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
        let (found, probes) = g.has_edge(0, 3);
        assert!(found);
        assert!(!probes.is_empty());
        let (found, _) = g.has_edge(0, 2);
        assert!(!found);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn has_edge_requires_sorting() {
        let g = diamond();
        let _ = g.has_edge(0, 1);
    }

    #[test]
    fn sort_adjacency_keeps_weights_attached() {
        let mut g = Csr::from_edges(2, &[(0, 1), (0, 0)], Some(&[5, 2]));
        g.sort_adjacency();
        let got: Vec<(NodeId, u32)> = g.edges_of(0).map(|(_, d, w)| (d, w)).collect();
        assert_eq!(got, vec![(0, 2), (1, 5)]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2)], None);
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
        s.validate().unwrap();
    }

    #[test]
    fn symmetrize_takes_min_weight() {
        let g = Csr::from_edges(2, &[(0, 1), (1, 0)], Some(&[9, 4]));
        let s = g.symmetrize();
        assert_eq!(s.edge_weight(0), 4);
        assert_eq!(s.edge_weight(1), 4);
    }

    #[test]
    fn max_degree_finds_hub() {
        let g = Csr::from_edges(4, &[(2, 0), (2, 1), (2, 3), (0, 1)], None);
        assert_eq!(g.max_degree(), (2, 3));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_edges(0, &[], None);
        assert_eq!(g.nodes(), 0);
        assert_eq!(g.max_degree(), (0, 0));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        let _ = Csr::from_edges(2, &[(0, 2)], None);
    }

    #[test]
    fn edge_range_partitions_edges() {
        let g = diamond();
        let mut total = 0;
        for v in 0..g.nodes() as NodeId {
            total += g.edge_range(v).len();
        }
        assert_eq!(total, g.edges());
    }

    #[test]
    fn from_parts_reassembles_identical_graph() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (1, 0)], Some(&[7, 3, 9]));
        let (rp, col, w) = g.raw_parts();
        let rebuilt = Csr::from_parts(rp.to_vec(), col.to_vec(), w.to_vec(), false).unwrap();
        assert_eq!(g, rebuilt);
        assert!(!rebuilt.is_mapped());
    }

    #[test]
    fn from_parts_rejects_broken_invariants() {
        // row_ptr not ending at the edge count.
        assert!(Csr::from_parts(vec![0, 5], vec![0], vec![], false).is_err());
        // Column out of range.
        assert!(Csr::from_parts(vec![0, 1], vec![3], vec![], false).is_err());
        // Weight length mismatch.
        assert!(Csr::from_parts(vec![0, 1], vec![0], vec![1, 2], false).is_err());
        // Claimed sorted but descending adjacency.
        assert!(Csr::from_parts(vec![0, 2, 2], vec![1, 0], vec![], true).is_err());
        // The same adjacency without the claim is fine.
        assert!(Csr::from_parts(vec![0, 2, 2], vec![1, 0], vec![], false).is_ok());
    }

    #[test]
    fn equality_ignores_storage_but_not_sorted_flag() {
        let a = Csr::from_edges(2, &[(0, 1)], None);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.sort_adjacency();
        assert_ne!(a, b, "sorted flag participates in equality");
    }
}

//! Compressed sparse row (CSR) graph representation.
//!
//! The paper stores inputs "in memory in standard CSR format, with 32B nodes
//! (64B for TC) and 16B edges" (§6.2). This module provides the logical CSR;
//! [`crate::layout`] maps it onto simulated addresses.

use std::ops::Range;

/// Node identifier. All generated graphs fit comfortably in 32 bits.
pub type NodeId = u32;

/// A directed graph in CSR form with optional `u32` edge weights.
///
/// Invariants (checked in debug builds and by the property-test suite):
/// * `row_ptr` has `nodes() + 1` entries, is monotonically non-decreasing,
///   starts at 0, and ends at `edges()`,
/// * every column entry is `< nodes()`,
/// * `weights` is either empty or exactly `edges()` long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    row_ptr: Vec<u64>,
    col: Vec<NodeId>,
    weights: Vec<u32>,
    sorted: bool,
}

impl Csr {
    /// Builds a CSR from an edge list. Edges keep their relative order
    /// within each source node.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= nodes`, or if `weights` is `Some` with a
    /// length different from `edges.len()`.
    pub fn from_edges(nodes: usize, edges: &[(NodeId, NodeId)], weights: Option<&[u32]>) -> Self {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge required");
        }
        let mut degree = vec![0u64; nodes];
        for &(u, v) in edges {
            assert!((u as usize) < nodes, "source {u} out of range");
            assert!((v as usize) < nodes, "target {v} out of range");
            degree[u as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        let mut acc = 0u64;
        row_ptr.push(0);
        for d in &degree {
            acc += d;
            row_ptr.push(acc);
        }
        let mut cursor: Vec<u64> = row_ptr[..nodes].to_vec();
        let mut col = vec![0 as NodeId; edges.len()];
        let mut out_w = if weights.is_some() {
            vec![0u32; edges.len()]
        } else {
            Vec::new()
        };
        for (i, &(u, v)) in edges.iter().enumerate() {
            let slot = cursor[u as usize] as usize;
            col[slot] = v;
            if let Some(w) = weights {
                out_w[slot] = w[i];
            }
            cursor[u as usize] += 1;
        }
        Csr {
            row_ptr,
            col,
            weights: out_w,
            sorted: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.col.len()
    }

    /// Whether edge weights are present.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Whether every adjacency list is sorted (enables [`Csr::has_edge`]).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let r = self.edge_range(v);
        r.end - r.start
    }

    /// Range of edge indices belonging to `v`.
    pub fn edge_range(&self, v: NodeId) -> Range<usize> {
        let v = v as usize;
        assert!(v < self.nodes(), "node {v} out of range");
        self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize
    }

    /// Neighbors of `v` as a slice.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.col[self.edge_range(v)]
    }

    /// Destination of edge index `e`.
    pub fn edge_dst(&self, e: usize) -> NodeId {
        self.col[e]
    }

    /// Weight of edge index `e` (1 for unweighted graphs).
    pub fn edge_weight(&self, e: usize) -> u32 {
        if self.weights.is_empty() {
            1
        } else {
            self.weights[e]
        }
    }

    /// Iterates `(edge_index, dst, weight)` for node `v`.
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = (usize, NodeId, u32)> + '_ {
        self.edge_range(v)
            .map(move |e| (e, self.col[e], self.edge_weight(e)))
    }

    /// Sorts every adjacency list (with its weights) ascending by target,
    /// enabling binary-search membership tests.
    pub fn sort_adjacency(&mut self) {
        for v in 0..self.nodes() {
            let r = self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize;
            if self.weights.is_empty() {
                self.col[r].sort_unstable();
            } else {
                let mut pairs: Vec<(NodeId, u32)> = self.col[r.clone()]
                    .iter()
                    .copied()
                    .zip(self.weights[r.clone()].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                for (i, (c, w)) in pairs.into_iter().enumerate() {
                    self.col[r.start + i] = c;
                    self.weights[r.start + i] = w;
                }
            }
        }
        self.sorted = true;
    }

    /// Binary-search membership test (the TC inner loop, paper §6.1).
    ///
    /// Returns the probed edge indices (for memory-trace generation) and
    /// whether the edge exists.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency lists have not been sorted via
    /// [`Csr::sort_adjacency`].
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> (bool, Vec<usize>) {
        assert!(self.sorted, "has_edge requires sorted adjacency");
        let r = self.edge_range(u);
        let mut probes = Vec::new();
        let (mut lo, mut hi) = (r.start, r.end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push(mid);
            match self.col[mid].cmp(&v) {
                std::cmp::Ordering::Equal => return (true, probes),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        (false, probes)
    }

    /// Returns the symmetric closure of this graph (each directed edge gets
    /// its reverse, duplicates removed). Weights are carried over; when both
    /// directions exist with different weights the smaller wins.
    pub fn symmetrize(&self) -> Csr {
        let mut pairs: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(self.edges() * 2);
        for v in 0..self.nodes() as NodeId {
            for (_, dst, w) in self.edges_of(v) {
                pairs.push((v, dst, w));
                pairs.push((dst, v, w));
            }
        }
        pairs.sort_unstable();
        pairs.dedup_by(|a, b| {
            if a.0 == b.0 && a.1 == b.1 {
                b.2 = b.2.min(a.2);
                true
            } else {
                false
            }
        });
        let edges: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(u, v, _)| (u, v)).collect();
        let weights: Vec<u32> = pairs.iter().map(|&(_, _, w)| w).collect();
        let mut g = if self.is_weighted() {
            Csr::from_edges(self.nodes(), &edges, Some(&weights))
        } else {
            Csr::from_edges(self.nodes(), &edges, None)
        };
        g.sorted = true; // built from a sorted, deduped pair list
        g
    }

    /// Largest out-degree and the node that has it; `(0, 0)` for an empty
    /// graph.
    pub fn max_degree(&self) -> (NodeId, usize) {
        let mut best = (0 as NodeId, 0usize);
        for v in 0..self.nodes() as NodeId {
            let d = self.out_degree(v);
            if d > best.1 {
                best = (v, d);
            }
        }
        best
    }

    /// Validates the CSR invariants, returning a description of the first
    /// violation. Used by property tests and the generator test-suite.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.is_empty() {
            return Err("row_ptr must have at least one entry".into());
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr must start at 0".into());
        }
        if *self.row_ptr.last().unwrap() != self.col.len() as u64 {
            return Err("row_ptr must end at edge count".into());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr must be non-decreasing".into());
        }
        let n = self.nodes() as NodeId;
        if let Some(bad) = self.col.iter().find(|&&c| c >= n) {
            return Err(format!("column {bad} out of range (n={n})"));
        }
        if !self.weights.is_empty() && self.weights.len() != self.col.len() {
            return Err("weights length must match edges".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> {1,2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], None)
    }

    #[test]
    fn from_edges_builds_correct_adjacency() {
        let g = diamond();
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.out_degree(0), 2);
        g.validate().unwrap();
    }

    #[test]
    fn weights_follow_their_edges() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (1, 0)], Some(&[7, 3, 9]));
        assert!(g.is_weighted());
        let got: Vec<(NodeId, u32)> = g.edges_of(0).map(|(_, d, w)| (d, w)).collect();
        assert_eq!(got, vec![(2, 7), (1, 3)]);
        assert_eq!(g.edge_weight(2), 9);
    }

    #[test]
    fn unweighted_edges_weigh_one() {
        let g = diamond();
        assert_eq!(g.edge_weight(0), 1);
    }

    #[test]
    fn sort_adjacency_enables_binary_search() {
        let mut g = Csr::from_edges(5, &[(0, 4), (0, 1), (0, 3), (1, 2)], None);
        g.sort_adjacency();
        assert!(g.is_sorted());
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
        let (found, probes) = g.has_edge(0, 3);
        assert!(found);
        assert!(!probes.is_empty());
        let (found, _) = g.has_edge(0, 2);
        assert!(!found);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn has_edge_requires_sorting() {
        let g = diamond();
        let _ = g.has_edge(0, 1);
    }

    #[test]
    fn sort_adjacency_keeps_weights_attached() {
        let mut g = Csr::from_edges(2, &[(0, 1), (0, 0)], Some(&[5, 2]));
        g.sort_adjacency();
        let got: Vec<(NodeId, u32)> = g.edges_of(0).map(|(_, d, w)| (d, w)).collect();
        assert_eq!(got, vec![(0, 2), (1, 5)]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_once() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2)], None);
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
        s.validate().unwrap();
    }

    #[test]
    fn symmetrize_takes_min_weight() {
        let g = Csr::from_edges(2, &[(0, 1), (1, 0)], Some(&[9, 4]));
        let s = g.symmetrize();
        assert_eq!(s.edge_weight(0), 4);
        assert_eq!(s.edge_weight(1), 4);
    }

    #[test]
    fn max_degree_finds_hub() {
        let g = Csr::from_edges(4, &[(2, 0), (2, 1), (2, 3), (0, 1)], None);
        assert_eq!(g.max_degree(), (2, 3));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_edges(0, &[], None);
        assert_eq!(g.nodes(), 0);
        assert_eq!(g.max_degree(), (0, 0));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        let _ = Csr::from_edges(2, &[(0, 2)], None);
    }

    #[test]
    fn edge_range_partitions_edges() {
        let g = diamond();
        let mut total = 0;
        for v in 0..g.nodes() as NodeId {
            total += g.edge_range(v).len();
        }
        assert_eq!(total, g.edges());
    }
}

//! Node reordering (relabeling) transforms.
//!
//! Graph-analytics locality depends heavily on node numbering: BFS-order
//! renumbering places topologically-near nodes on nearby cache lines, and
//! degree-descending order groups the hubs that dominate access frequency.
//! These are standard preprocessing steps for the systems the paper
//! compares against, and they compose with the simulator: relabeled graphs
//! run through the same address map and show different MPKI.

use crate::csr::{Csr, NodeId};

/// A node permutation: `perm[old_id] = new_id`. Always a bijection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation(Vec<NodeId>);

impl Permutation {
    /// Wraps a permutation vector.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a bijection over `0..perm.len()`.
    pub fn new(perm: Vec<NodeId>) -> Self {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(
                (p as usize) < perm.len() && !seen[p as usize],
                "not a bijection"
            );
            seen[p as usize] = true;
        }
        Permutation(perm)
    }

    /// The identity permutation over `n` nodes.
    pub fn identity(n: usize) -> Self {
        Permutation((0..n as NodeId).collect())
    }

    /// New id of `old`.
    pub fn map(&self, old: NodeId) -> NodeId {
        self.0[old as usize]
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// BFS-order renumbering from `source`: reachable nodes get ids in
/// visitation order; unreachable nodes follow in old-id order.
pub fn bfs_order(graph: &Csr, source: NodeId) -> Permutation {
    let n = graph.nodes();
    let mut perm = vec![NodeId::MAX; n];
    let mut next: NodeId = 0;
    if n > 0 {
        let mut queue = std::collections::VecDeque::new();
        perm[source as usize] = next;
        next += 1;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if perm[u as usize] == NodeId::MAX {
                    perm[u as usize] = next;
                    next += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    for p in perm.iter_mut() {
        if *p == NodeId::MAX {
            *p = next;
            next += 1;
        }
    }
    Permutation::new(perm)
}

/// Degree-descending renumbering: hubs first (ties by old id, stable).
pub fn degree_order(graph: &Csr) -> Permutation {
    let mut order: Vec<NodeId> = (0..graph.nodes() as NodeId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let mut perm = vec![0 as NodeId; graph.nodes()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as NodeId;
    }
    Permutation::new(perm)
}

/// Applies a permutation, producing the relabeled graph (adjacency order
/// follows the new source numbering; weights carried).
///
/// # Panics
///
/// Panics if the permutation length does not match the node count.
pub fn relabel(graph: &Csr, perm: &Permutation) -> Csr {
    assert_eq!(perm.len(), graph.nodes(), "permutation size mismatch");
    let mut edges = Vec::with_capacity(graph.edges());
    let mut weights = Vec::with_capacity(graph.edges());
    for old in 0..graph.nodes() as NodeId {
        for (_, dst, w) in graph.edges_of(old) {
            edges.push((perm.map(old), perm.map(dst)));
            weights.push(w);
        }
    }
    if graph.is_weighted() {
        Csr::from_edges(graph.nodes(), &edges, Some(&weights))
    } else {
        Csr::from_edges(graph.nodes(), &edges, None)
    }
}

/// Mean absolute id distance across edges — a cheap locality proxy
/// (smaller = neighbors on nearer cache lines).
pub fn edge_locality(graph: &Csr) -> f64 {
    if graph.edges() == 0 {
        return 0.0;
    }
    let mut total = 0u64;
    for v in 0..graph.nodes() as NodeId {
        for &u in graph.neighbors(v) {
            total += (v.abs_diff(u)) as u64;
        }
    }
    total as f64 / graph.edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::powerlaw::{self, PowerLawConfig};
    use crate::gen::uniform::{self, UniformConfig};

    fn edge_multiset(g: &Csr) -> Vec<(NodeId, NodeId, u32)> {
        let mut v: Vec<_> = (0..g.nodes() as NodeId)
            .flat_map(|a| g.edges_of(a).map(move |(_, b, w)| (a, b, w)))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn relabel_is_an_isomorphism() {
        let g = uniform::generate(&UniformConfig::new(200, 4), 3);
        let perm = bfs_order(&g, 0);
        let h = relabel(&g, &perm);
        h.validate().unwrap();
        assert_eq!(g.nodes(), h.nodes());
        assert_eq!(g.edges(), h.edges());
        // Mapping g's edges through perm yields exactly h's edges.
        let mut mapped: Vec<_> = edge_multiset(&g)
            .into_iter()
            .map(|(a, b, w)| (perm.map(a), perm.map(b), w))
            .collect();
        mapped.sort_unstable();
        assert_eq!(mapped, edge_multiset(&h));
    }

    #[test]
    fn bfs_order_improves_locality_on_random_graphs() {
        let g = uniform::generate(&UniformConfig::new(2000, 4), 9);
        let reordered = relabel(&g, &bfs_order(&g, 0));
        let before = edge_locality(&g);
        let after = edge_locality(&reordered);
        // Uniform random graphs have log diameter, so BFS levels are wide;
        // a ~15-20% tightening is the realistic effect size here.
        assert!(
            after < before * 0.9,
            "BFS order must tighten ids: {before:.0} -> {after:.0}"
        );
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = powerlaw::generate(&PowerLawConfig::new(500, 5, 1.2), 4);
        let perm = degree_order(&g);
        let h = relabel(&g, &perm);
        let degs: Vec<usize> = (0..h.nodes() as NodeId).map(|v| h.out_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "non-increasing degrees");
    }

    #[test]
    fn identity_relabel_preserves_graph() {
        let g = uniform::generate(&UniformConfig::new(60, 3), 2);
        let h = relabel(&g, &Permutation::identity(g.nodes()));
        assert_eq!(edge_multiset(&g), edge_multiset(&h));
    }

    #[test]
    fn unreachable_nodes_get_trailing_ids() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0)], None);
        let perm = bfs_order(&g, 0);
        assert_eq!(perm.map(0), 0);
        assert_eq!(perm.map(1), 1);
        let mut rest = [perm.map(2), perm.map(3), perm.map(4)];
        rest.sort_unstable();
        assert_eq!(rest, [2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn permutation_rejects_duplicates() {
        let _ = Permutation::new(vec![0, 0, 1]);
    }
}

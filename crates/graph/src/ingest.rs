//! Bounded-memory streaming CSR construction (external sort).
//!
//! [`crate::io::stream_edges`] delivers edges one at a time; this module
//! buffers them as packed 12-byte `(src, dst, weight)` records, sorts and
//! spills full buffers to temp-file *runs*, then k-way-merges the runs into
//! canonical `(src, dst, weight)` order. Because the merged stream visits
//! sources in ascending order, the CSR sections fall out sequentially: a
//! scale-20+ RMAT (10^7+ edges) builds with only the run buffer plus the
//! row-pointer array resident, never the full edge list.
//!
//! Two sinks consume the merged stream:
//!
//! * [`ingest_to_csr`] — assembles an in-memory [`Csr`] (the sections are
//!   the only O(edges) memory),
//! * [`ingest_to_image`] — streams the col/weight sections through temp
//!   files into a `minnow-csr-image/v1` file ([`crate::image`]), keeping
//!   only the row-pointer array in RAM.
//!
//! The output is canonical: independent of input edge order and of the
//! memory budget (the merged stream is the sorted multiset either way), so
//! `ingest(shuffled edges) == ingest(sorted edges)` — the property pinned
//! by the conformance suite. Adjacency lists come out sorted, so the
//! result always has [`Csr::is_sorted`] set.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::{Csr, NodeId};
use crate::image;
use crate::io::{stream_edges, GraphSource, ParseError};

/// Knobs for one ingestion pass.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Collapse parallel `(src, dst)` duplicates, keeping the smallest
    /// weight (matching [`Csr::symmetrize`]'s tie rule).
    pub dedup: bool,
    /// Drop `v -> v` self-loops at intake.
    pub drop_self_loops: bool,
    /// Emit the reverse of every edge, making the graph symmetric
    /// (combine with `dedup` to avoid doubled undirected edges).
    pub symmetrize: bool,
    /// Discard weights even when the input carries them.
    pub strip_weights: bool,
    /// Target size of the in-core run buffer in bytes (12 bytes per
    /// buffered edge). The floor is one 4096-edge buffer.
    pub budget_bytes: usize,
    /// Minimum node count for the output (formats without a node-count
    /// header otherwise trim to the largest id seen).
    pub nodes_hint: Option<u64>,
    /// Where spill runs and section streams go; defaults to the system
    /// temp directory.
    pub temp_dir: Option<PathBuf>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            dedup: false,
            drop_self_loops: false,
            symmetrize: false,
            strip_weights: false,
            budget_bytes: 256 << 20,
            nodes_hint: None,
            temp_dir: None,
        }
    }
}

/// What one ingestion pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Edges the parser delivered (before symmetrization/dedup).
    pub edges_read: u64,
    /// Directed edges in the output CSR.
    pub edges_kept: u64,
    /// Nodes in the output CSR.
    pub nodes: u64,
    /// Whether the output carries weights.
    pub weighted: bool,
    /// Sorted runs merged (1 means the input fit in the run buffer).
    pub runs: usize,
}

/// Unique-ish tag so concurrent ingests never collide on temp names.
fn temp_tag() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

const REC_BYTES: usize = 12;

/// Accumulates edges, spilling sorted runs to disk when the buffer fills.
struct RunSorter {
    buf: Vec<(u32, u32, u32)>,
    cap: usize,
    runs: Vec<PathBuf>,
    dir: PathBuf,
    tag: String,
    max_id: u64,
    any: bool,
}

impl RunSorter {
    fn new(opts: &IngestOptions) -> RunSorter {
        let cap = (opts.budget_bytes / REC_BYTES).max(4096);
        RunSorter {
            buf: Vec::with_capacity(cap.min(1 << 20)),
            cap,
            runs: Vec::new(),
            dir: opts
                .temp_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir),
            tag: temp_tag(),
            max_id: 0,
            any: false,
        }
    }

    fn push(&mut self, u: NodeId, v: NodeId, w: u32) -> std::io::Result<()> {
        self.any = true;
        self.max_id = self.max_id.max(u as u64).max(v as u64);
        if self.buf.len() == self.cap {
            self.spill()?;
        }
        self.buf.push((u, v, w));
        Ok(())
    }

    fn spill(&mut self) -> std::io::Result<()> {
        self.buf.sort_unstable();
        let path = self
            .dir
            .join(format!("minnow-ingest-{}-run{}.tmp", self.tag, self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &(a, b, c) in &self.buf {
            w.write_all(&a.to_le_bytes())?;
            w.write_all(&b.to_le_bytes())?;
            w.write_all(&c.to_le_bytes())?;
        }
        w.flush()?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Merges everything pushed so far into ascending `(src, dst, weight)`
    /// order, invoking `emit` per record. Returns the number of runs merged.
    fn merge(mut self, mut emit: impl FnMut(u32, u32, u32)) -> std::io::Result<usize> {
        if self.runs.is_empty() {
            // Everything fit in core: one implicit run.
            self.buf.sort_unstable();
            for &(a, b, c) in &self.buf {
                emit(a, b, c);
            }
            return Ok(1);
        }
        if !self.buf.is_empty() {
            self.spill()?;
        }
        let nruns = self.runs.len();
        let mut readers: Vec<RunReader> = self
            .runs
            .iter()
            .map(|p| File::open(p).map(RunReader::new))
            .collect::<std::io::Result<_>>()?;
        // Seed the heap with each run's head; ties break on run index,
        // which is irrelevant to the output (equal records are identical).
        let mut heap = std::collections::BinaryHeap::with_capacity(nruns);
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(rec) = r.next()? {
                heap.push(std::cmp::Reverse((rec, i)));
            }
        }
        while let Some(std::cmp::Reverse(((a, b, c), i))) = heap.pop() {
            emit(a, b, c);
            if let Some(rec) = readers[i].next()? {
                heap.push(std::cmp::Reverse((rec, i)));
            }
        }
        Ok(nruns)
    }
}

impl Drop for RunSorter {
    fn drop(&mut self) {
        for p in &self.runs {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Buffered reader over one spilled run.
struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    fn new(file: File) -> RunReader {
        RunReader {
            reader: BufReader::with_capacity(64 << 10, file),
        }
    }

    fn next(&mut self) -> std::io::Result<Option<(u32, u32, u32)>> {
        let mut rec = [0u8; REC_BYTES];
        let mut filled = 0;
        while filled < REC_BYTES {
            match self.reader.read(&mut rec[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if filled == 0 {
            return Ok(None);
        }
        if filled < REC_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "spill run truncated (disk full during ingest?)",
            ));
        }
        Ok(Some((
            u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            u32::from_le_bytes(rec[4..8].try_into().unwrap()),
            u32::from_le_bytes(rec[8..12].try_into().unwrap()),
        )))
    }
}

/// Shared merge-and-build driver: runs the merge, handing each kept edge
/// (post-dedup) to `take`, and closes out the row-pointer array.
struct Builder {
    row_ptr: Vec<u64>,
    kept: u64,
    last: Option<(u32, u32)>,
    dedup: bool,
    nodes: u64,
}

impl Builder {
    fn new(nodes: u64, dedup: bool) -> Builder {
        let mut row_ptr = Vec::with_capacity(nodes as usize + 1);
        row_ptr.push(0);
        Builder {
            row_ptr,
            kept: 0,
            last: None,
            dedup,
            nodes,
        }
    }

    /// Processes one merged record; returns the edge to keep, if any.
    fn accept(&mut self, u: u32, v: u32, w: u32) -> Option<(u32, u32, u32)> {
        if self.dedup && self.last == Some((u, v)) {
            return None;
        }
        self.last = Some((u, v));
        // Close out row_ptr entries for every source up to and including u.
        // The merged stream is ascending in u, so this advances monotonically.
        while self.row_ptr.len() <= u as usize {
            self.row_ptr.push(self.kept);
        }
        self.kept += 1;
        Some((u, v, w))
    }

    fn finish(mut self) -> Vec<u64> {
        while self.row_ptr.len() <= self.nodes as usize {
            self.row_ptr.push(self.kept);
        }
        self.row_ptr
    }
}

/// Streams `reader` (parsed as `source`) through the external sorter into
/// an in-memory [`Csr`] in canonical order.
///
/// The result is independent of the input's edge order and of
/// `budget_bytes`; adjacency lists are sorted, so `is_sorted()` holds. The
/// first weight in canonical order survives dedup — i.e. the minimum
/// weight among duplicates, matching [`Csr::symmetrize`].
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or I/O failure (including
/// spill-file I/O). [`GraphSource::Image`] inputs are refused — load them
/// with [`crate::image::load_image`].
pub fn ingest_to_csr<R: Read>(
    source: GraphSource,
    reader: R,
    opts: &IngestOptions,
) -> Result<(Csr, IngestReport), ParseError> {
    let (sorter, edges_read, nodes, weighted) = fill(source, reader, opts)?;
    let mut builder = Builder::new(nodes, opts.dedup);
    let mut col: Vec<NodeId> = Vec::new();
    let mut weights: Vec<u32> = Vec::new();
    let runs = sorter
        .merge(|u, v, w| {
            if let Some((_, v, w)) = builder.accept(u, v, w) {
                col.push(v);
                if weighted {
                    weights.push(w);
                }
            }
        })
        .map_err(ParseError::Io)?;
    let kept = col.len() as u64;
    let row_ptr = builder.finish();
    let graph = Csr::from_parts(row_ptr, col, weights, true)
        .map_err(|e| ParseError::Image { message: e })?;
    Ok((
        graph,
        IngestReport {
            edges_read,
            edges_kept: kept,
            nodes,
            weighted,
            runs,
        },
    ))
}

/// Streams `reader` (parsed as `source`) through the external sorter
/// directly into a `minnow-csr-image/v1` file at `image_path`, keeping
/// only the run buffer and the row-pointer array in memory — the col and
/// weight sections pass through temp files.
///
/// # Errors
///
/// As [`ingest_to_csr`]; additionally propagates failures writing the
/// image or its temp section files.
pub fn ingest_to_image<R: Read>(
    source: GraphSource,
    reader: R,
    image_path: &Path,
    opts: &IngestOptions,
) -> Result<IngestReport, ParseError> {
    let (sorter, edges_read, nodes, weighted) = fill(source, reader, opts)?;
    let dir = opts
        .temp_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir);
    let tag = temp_tag();
    let col_path = dir.join(format!("minnow-ingest-{tag}-col.tmp"));
    let w_path = dir.join(format!("minnow-ingest-{tag}-wts.tmp"));
    let result = ingest_to_image_inner(
        sorter, edges_read, nodes, weighted, opts, image_path, &col_path, &w_path,
    );
    let _ = std::fs::remove_file(&col_path);
    let _ = std::fs::remove_file(&w_path);
    result
}

#[allow(clippy::too_many_arguments)]
fn ingest_to_image_inner(
    sorter: RunSorter,
    edges_read: u64,
    nodes: u64,
    weighted: bool,
    opts: &IngestOptions,
    image_path: &Path,
    col_path: &Path,
    w_path: &Path,
) -> Result<IngestReport, ParseError> {
    // Read+write handles: assemble_image rewinds and copies these back out.
    let section_file = |p: &Path| {
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(p)
    };
    let mut col_out = BufWriter::new(section_file(col_path)?);
    let mut w_out = if weighted {
        Some(BufWriter::new(section_file(w_path)?))
    } else {
        None
    };
    let mut col_digest = image::Fnv::new();
    let mut w_digest = image::Fnv::new();
    let mut builder = Builder::new(nodes, opts.dedup);
    let mut io_err: Option<std::io::Error> = None;
    let runs = sorter
        .merge(|u, v, w| {
            if io_err.is_some() {
                return;
            }
            if let Some((_, v, w)) = builder.accept(u, v, w) {
                let vb = v.to_le_bytes();
                col_digest.update(&vb);
                if let Err(e) = col_out.write_all(&vb) {
                    io_err = Some(e);
                    return;
                }
                if let Some(out) = &mut w_out {
                    let wb = w.to_le_bytes();
                    w_digest.update(&wb);
                    if let Err(e) = out.write_all(&wb) {
                        io_err = Some(e);
                    }
                }
            }
        })
        .map_err(ParseError::Io)?;
    if let Some(e) = io_err {
        return Err(ParseError::Io(e));
    }
    let kept = builder.kept;
    let row_ptr = builder.finish();
    col_out.flush()?;
    let mut col_file = col_out.into_inner().map_err(|e| e.into_error())?;
    let mut w_file = match w_out {
        Some(mut out) => {
            out.flush()?;
            Some(out.into_inner().map_err(|e| e.into_error())?)
        }
        None => None,
    };
    image::assemble_image(
        image_path,
        &row_ptr,
        true, // canonical order sorts every adjacency list
        &mut col_file,
        col_digest.finish(),
        w_file.as_mut().map(|f| (f, w_digest.finish())),
        kept,
    )?;
    Ok(IngestReport {
        edges_read,
        edges_kept: kept,
        nodes,
        weighted,
        runs,
    })
}

/// Intake half shared by both sinks: parse, filter, spill.
fn fill<R: Read>(
    source: GraphSource,
    reader: R,
    opts: &IngestOptions,
) -> Result<(RunSorter, u64, u64, bool), ParseError> {
    let mut sorter = RunSorter::new(opts);
    let mut edges_read = 0u64;
    let drop_loops = opts.drop_self_loops;
    let symmetrize = opts.symmetrize;
    let info = {
        let s = &mut sorter;
        stream_edges(source, reader, |u, v, w| {
            edges_read += 1;
            if drop_loops && u == v {
                return Ok(());
            }
            s.push(u, v, w)?;
            if symmetrize && u != v {
                s.push(v, u, w)?;
            }
            Ok(())
        })?
    };
    let declared = info.declared_nodes.unwrap_or(0);
    let hinted = opts.nodes_hint.unwrap_or(0);
    let seen = if sorter.any { sorter.max_id + 1 } else { 0 };
    let nodes = declared.max(hinted).max(seen);
    let weighted = info.weighted && !opts.strip_weights;
    Ok((sorter, edges_read, nodes, weighted))
}

/// [`ingest_to_csr`] over a file path, with format auto-detection.
///
/// # Errors
///
/// As [`ingest_to_csr`], plus file-open failures.
pub fn ingest_file_to_csr(
    path: &Path,
    source: Option<GraphSource>,
    opts: &IngestOptions,
) -> Result<(Csr, IngestReport), ParseError> {
    let source = source.unwrap_or_else(|| GraphSource::detect(path));
    ingest_to_csr(source, File::open(path)?, opts)
}

/// [`ingest_to_image`] over a file path, with format auto-detection.
///
/// # Errors
///
/// As [`ingest_to_image`], plus file-open failures.
pub fn ingest_file_to_image(
    path: &Path,
    source: Option<GraphSource>,
    image_path: &Path,
    opts: &IngestOptions,
) -> Result<IngestReport, ParseError> {
    let source = source.unwrap_or_else(|| GraphSource::detect(path));
    ingest_to_image(source, File::open(path)?, image_path, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical(edges: &[(u32, u32, u32)], nodes: usize, weighted: bool) -> Csr {
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        let pairs: Vec<(NodeId, NodeId)> = sorted.iter().map(|&(u, v, _)| (u, v)).collect();
        let ws: Vec<u32> = sorted.iter().map(|&(_, _, w)| w).collect();
        let mut g = Csr::from_edges(nodes, &pairs, if weighted { Some(&ws) } else { None });
        g.sort_adjacency();
        g
    }

    fn as_edge_list(edges: &[(u32, u32, u32)]) -> String {
        edges
            .iter()
            .map(|&(u, v, w)| format!("{u} {v} {w}\n"))
            .collect()
    }

    #[test]
    fn stream_build_matches_in_memory_build() {
        let edges = [(3u32, 1u32, 5u32), (0, 2, 1), (3, 0, 9), (1, 3, 2), (0, 1, 4)];
        let text = as_edge_list(&edges);
        let (g, report) =
            ingest_to_csr(GraphSource::EdgeList, text.as_bytes(), &IngestOptions::default())
                .unwrap();
        assert_eq!(g, canonical(&edges, 4, true));
        assert!(g.is_sorted());
        assert_eq!(report.edges_read, 5);
        assert_eq!(report.edges_kept, 5);
        assert_eq!(report.nodes, 4);
        assert!(report.weighted);
        assert_eq!(report.runs, 1);
    }

    #[test]
    fn tiny_budget_forces_spills_without_changing_output() {
        let edges: Vec<(u32, u32, u32)> = (0..20000u32)
            .map(|i| ((i * 7919) % 503, (i * 104729) % 503, 1 + i % 9))
            .collect();
        let text = as_edge_list(&edges);
        let big = ingest_to_csr(
            GraphSource::EdgeList,
            text.as_bytes(),
            &IngestOptions::default(),
        )
        .unwrap();
        let tiny = ingest_to_csr(
            GraphSource::EdgeList,
            text.as_bytes(),
            &IngestOptions {
                budget_bytes: 1, // floors at 4096 records -> ~5 runs
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert!(tiny.1.runs > 1, "expected spills, got {} run(s)", tiny.1.runs);
        assert_eq!(big.0, tiny.0);
        assert_eq!(big.1.edges_kept, tiny.1.edges_kept);
    }

    #[test]
    fn dedup_keeps_min_weight_and_loops_drop() {
        let text = "2 1 9\n2 1 3\n2 1 7\n1 1 5\n0 2 4\n";
        let (g, report) = ingest_to_csr(
            GraphSource::EdgeList,
            text.as_bytes(),
            &IngestOptions {
                dedup: true,
                drop_self_loops: true,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.edges_read, 5);
        assert_eq!(report.edges_kept, 2);
        assert_eq!(g.neighbors(2), &[1]);
        let e = g.edge_range(2).start;
        assert_eq!(g.edge_weight(e), 3, "min weight among duplicates survives");
        assert_eq!(g.out_degree(1), 0, "self-loop dropped");
    }

    #[test]
    fn symmetrize_dedup_matches_csr_symmetrize() {
        let raw = [(0u32, 1u32), (1, 2), (2, 0), (1, 0), (3, 1)];
        let text: String = raw.iter().map(|&(u, v)| format!("{u} {v}\n")).collect();
        let (g, _) = ingest_to_csr(
            GraphSource::EdgeList,
            text.as_bytes(),
            &IngestOptions {
                dedup: true,
                symmetrize: true,
                drop_self_loops: true,
                ..IngestOptions::default()
            },
        )
        .unwrap();
        let reference = Csr::from_edges(4, &raw, None).symmetrize();
        assert_eq!(g, reference);
    }

    #[test]
    fn nodes_hint_pads_isolated_tail() {
        let (g, report) = ingest_to_csr(
            GraphSource::EdgeList,
            "0 1\n".as_bytes(),
            &IngestOptions {
                nodes_hint: Some(10),
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(g.nodes(), 10);
        assert_eq!(report.nodes, 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn image_sink_matches_csr_sink() {
        let edges: Vec<(u32, u32, u32)> = (0..5000u32)
            .map(|i| ((i * 31) % 97, (i * 17) % 97, 1 + i % 5))
            .collect();
        let text = as_edge_list(&edges);
        let path = std::env::temp_dir().join(format!(
            "minnow-ingest-test-{}-sink.mcsr",
            std::process::id()
        ));
        let opts = IngestOptions {
            budget_bytes: 1,
            ..IngestOptions::default()
        };
        let (direct, r1) =
            ingest_to_csr(GraphSource::EdgeList, text.as_bytes(), &opts).unwrap();
        let r2 =
            ingest_to_image(GraphSource::EdgeList, text.as_bytes(), &path, &opts).unwrap();
        assert_eq!(r1, r2);
        for mode in [image::LoadMode::Read, image::LoadMode::Auto] {
            let loaded = image::load_image(&path, mode).unwrap();
            assert_eq!(direct, loaded);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_input_ingests_to_empty_graph() {
        let (g, report) = ingest_to_csr(
            GraphSource::EdgeList,
            "# nothing\n".as_bytes(),
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(g.nodes(), 0);
        assert_eq!(g.edges(), 0);
        assert_eq!(report.edges_read, 0);
    }

    #[test]
    fn parse_errors_propagate_not_panic() {
        let err = ingest_to_csr(
            GraphSource::EdgeList,
            "0 1\nbroken\n".as_bytes(),
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = ingest_to_csr(GraphSource::Image, &[][..], &IngestOptions::default())
            .unwrap_err();
        assert!(matches!(err, ParseError::Image { .. }));
    }
}

//! Seeded synthetic graph generators.
//!
//! Each generator reproduces one structural axis of the paper's Table 1
//! inputs (the originals — USA road network, Graph500 Kronecker, Wikipedia
//! link graphs, Amazon ratings — are multi-hundred-MB downloads; the
//! generators produce scaled analogues with the same degree/diameter
//! character, which is what the paper's per-input findings depend on).
//!
//! All generators are deterministic in their seed.

pub mod bipartite;
pub mod grid;
pub mod powerlaw;
pub mod rmat;
pub mod uniform;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::NodeId;

/// Creates the crate-standard RNG from a seed.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Draws integer weights uniformly from `range` for `count` edges.
pub(crate) fn draw_weights(
    rng: &mut SmallRng,
    range: std::ops::RangeInclusive<u32>,
    count: usize,
) -> Vec<u32> {
    (0..count).map(|_| rng.gen_range(range.clone())).collect()
}

/// Samples a Zipf-distributed rank in `0..n` with exponent `alpha` by
/// inverse-CDF over precomputed cumulative weights.
#[derive(Debug, Clone)]
pub(crate) struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a positive support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub(crate) fn sample(&self, rng: &mut SmallRng) -> NodeId {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as NodeId,
            Err(i) => (i.min(self.cdf.len() - 1)) as NodeId,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut r = rng(7);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With alpha=1.2 the top-10 ranks carry a large fraction of mass.
        assert!(head > n / 10, "head hits {head} of {n}");
    }

    #[test]
    fn zipf_is_seed_deterministic() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<NodeId> = {
            let mut r = rng(3);
            (0..50).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<NodeId> = {
            let mut r = rng(3);
            (0..50).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn draw_weights_stays_in_range() {
        let mut r = rng(1);
        let w = draw_weights(&mut r, 3..=7, 1000);
        assert!(w.iter().all(|&x| (3..=7).contains(&x)));
        assert_eq!(w.len(), 1000);
    }
}

//! Memory-image view of a CSR graph for indirect hardware prefetchers.
//!
//! IMP-style prefetchers chase `A[B[i]]` by reading the index array `B` out
//! of cache. [`GraphImage`] backs the simulated edge-array region with the
//! actual CSR contents so such prefetchers can dereference edge records to
//! destination node ids.

use minnow_sim::observer::MemoryImage;

use crate::csr::Csr;
use crate::layout::{AddressMap, EDGE_BASE};

/// A [`MemoryImage`] over one graph laid out by an [`AddressMap`].
#[derive(Debug, Clone)]
pub struct GraphImage<'a> {
    graph: &'a Csr,
    map: AddressMap,
}

impl<'a> GraphImage<'a> {
    /// Wraps `graph` under `map`'s layout.
    pub fn new(graph: &'a Csr, map: AddressMap) -> Self {
        GraphImage { graph, map }
    }

    /// The address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }
}

impl MemoryImage for GraphImage<'_> {
    fn read_u64(&self, addr: u64) -> Option<u64> {
        // Edge records: 16B each, destination id in the first word.
        if addr >= EDGE_BASE {
            let offset = addr - EDGE_BASE;
            let idx = (offset / 16) as usize;
            if offset.is_multiple_of(16) && idx < self.graph.edges() {
                return Some(self.graph.edge_dst(idx) as u64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_edge_destinations() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (2, 0)], None);
        let map = AddressMap::standard();
        let img = GraphImage::new(&g, map);
        assert_eq!(img.read_u64(map.edge_addr(0)), Some(2));
        assert_eq!(img.read_u64(map.edge_addr(1)), Some(1));
        assert_eq!(img.read_u64(map.edge_addr(2)), Some(0));
    }

    #[test]
    fn out_of_range_reads_are_none() {
        let g = Csr::from_edges(2, &[(0, 1)], None);
        let map = AddressMap::standard();
        let img = GraphImage::new(&g, map);
        assert_eq!(img.read_u64(map.edge_addr(5)), None);
        assert_eq!(img.read_u64(map.edge_addr(0) + 8), None, "mid-record");
        assert_eq!(img.read_u64(0x100), None, "outside edge region");
    }
}

//! CSR graph images: the simulated-memory view and the on-disk format.
//!
//! Two related facilities live here:
//!
//! * [`GraphImage`] — a [`MemoryImage`] backing the simulated edge-array
//!   region with real CSR contents so IMP-style indirect prefetchers can
//!   dereference edge records to destination node ids.
//! * The **`minnow-csr-image/v1`** on-disk format — a checksummed,
//!   little-endian serialization of a [`Csr`]'s three sections that loads
//!   back either zero-copy (private read-only `mmap`, the sections borrowed
//!   straight from the page cache) or through buffered reads. Repeated
//!   sweeps of the same ingested input hit the image in milliseconds
//!   instead of re-parsing text.
//!
//! ## `minnow-csr-image/v1` layout
//!
//! All integers little-endian. One 64-byte header, then three 8-byte-aligned
//! sections back to back; the file length is exactly the header plus the
//! sections (any deviation is reported as truncation/corruption):
//!
//! ```text
//! offset  size            field
//! 0       8               magic "MNWCSR1\n"
//! 8       2               endian marker, u16 = 0x0102 (bytes 02 01 on disk)
//! 10      2               format version, u16 = 1
//! 12      4               flags, u32: bit0 = weighted, bit1 = sorted
//! 16      8               node count, u64
//! 24      8               edge count, u64
//! 32      8               checksum, u64 (see below)
//! 40      24              reserved, must be zero
//! 64      (nodes+1) * 8   row_ptr section, u64 per entry
//! ...     edges * 4       col section, u32 per entry
//! ...     edges * 4       weights section (absent when bit0 clear)
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the concatenated little-endian
//! digests of the three sections, each digest itself FNV-1a over that
//! section's bytes (an absent weights section hashes as the empty string).
//! Per-section digests let the streaming ingest writer checksum the col and
//! weight streams as they spill, before `row_ptr` is complete.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use minnow_sim::observer::MemoryImage;

use crate::csr::Csr;
use crate::io::ParseError;
use crate::layout::{AddressMap, EDGE_BASE};
use crate::mmap::Mapping;

/// Schema identifier for the on-disk CSR image format.
pub const IMAGE_SCHEMA: &str = "minnow-csr-image/v1";

/// Magic bytes opening every image file.
pub const IMAGE_MAGIC: [u8; 8] = *b"MNWCSR1\n";

const HEADER_LEN: u64 = 64;
const ENDIAN_MARKER: u16 = 0x0102;
const VERSION: u16 = 1;
const FLAG_WEIGHTED: u32 = 1;
const FLAG_SORTED: u32 = 2;

/// How [`load_image`] should get the section bytes into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Try the zero-copy `mmap` path, fall back to buffered reads.
    #[default]
    Auto,
    /// Zero-copy `mmap` only; error if mapping is unavailable.
    Mmap,
    /// Buffered reads into owned vectors only.
    Read,
}

impl LoadMode {
    /// Parses a CLI spelling (`auto` | `mmap` | `read`).
    pub fn parse(s: &str) -> Option<LoadMode> {
        match s {
            "auto" => Some(LoadMode::Auto),
            "mmap" => Some(LoadMode::Mmap),
            "read" => Some(LoadMode::Read),
            _ => None,
        }
    }

    /// CLI label.
    pub fn label(self) -> &'static str {
        match self {
            LoadMode::Auto => "auto",
            LoadMode::Mmap => "mmap",
            LoadMode::Read => "read",
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a, used for the per-section digests.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Combines the three per-section digests into the header checksum.
pub(crate) fn combine_digests(row_ptr: u64, col: u64, weights: u64) -> u64 {
    let mut h = Fnv::new();
    h.update(&row_ptr.to_le_bytes());
    h.update(&col.to_le_bytes());
    h.update(&weights.to_le_bytes());
    h.finish()
}

fn digest_u64s(values: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

fn digest_u32s(values: &[u32]) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.update(&v.to_le_bytes());
    }
    h.finish()
}

fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

fn image_err(message: impl Into<String>) -> ParseError {
    ParseError::Image {
        message: message.into(),
    }
}

/// The parsed + validated fixed-size header of an image file.
#[derive(Debug, Clone, Copy)]
struct Header {
    weighted: bool,
    sorted: bool,
    nodes: u64,
    edges: u64,
    checksum: u64,
}

impl Header {
    fn encode(&self) -> [u8; HEADER_LEN as usize] {
        let mut h = [0u8; HEADER_LEN as usize];
        h[0..8].copy_from_slice(&IMAGE_MAGIC);
        h[8..10].copy_from_slice(&ENDIAN_MARKER.to_le_bytes());
        h[10..12].copy_from_slice(&VERSION.to_le_bytes());
        let mut flags = 0u32;
        if self.weighted {
            flags |= FLAG_WEIGHTED;
        }
        if self.sorted {
            flags |= FLAG_SORTED;
        }
        h[12..16].copy_from_slice(&flags.to_le_bytes());
        h[16..24].copy_from_slice(&self.nodes.to_le_bytes());
        h[24..32].copy_from_slice(&self.edges.to_le_bytes());
        h[32..40].copy_from_slice(&self.checksum.to_le_bytes());
        h
    }

    fn decode(h: &[u8; HEADER_LEN as usize]) -> Result<Header, ParseError> {
        if h[0..8] != IMAGE_MAGIC {
            return Err(image_err("not a minnow-csr-image file (bad magic)"));
        }
        let endian = u16::from_le_bytes([h[8], h[9]]);
        if endian != ENDIAN_MARKER {
            if endian == ENDIAN_MARKER.swap_bytes() {
                return Err(image_err(
                    "image was written on a big-endian host; \
                     minnow-csr-image/v1 is little-endian only",
                ));
            }
            return Err(image_err(format!(
                "unrecognized endian marker {endian:#06x} (corrupt header?)"
            )));
        }
        let version = u16::from_le_bytes([h[10], h[11]]);
        if version != VERSION {
            return Err(image_err(format!(
                "unsupported image version {version}; this build reads \
                 {IMAGE_SCHEMA} only — re-ingest the input or upgrade"
            )));
        }
        let flags = u32::from_le_bytes([h[12], h[13], h[14], h[15]]);
        if flags & !(FLAG_WEIGHTED | FLAG_SORTED) != 0 {
            return Err(image_err(format!(
                "unknown flag bits {:#x} (written by a newer tool?)",
                flags & !(FLAG_WEIGHTED | FLAG_SORTED)
            )));
        }
        if h[40..64].iter().any(|&b| b != 0) {
            return Err(image_err("reserved header bytes are not zero"));
        }
        Ok(Header {
            weighted: flags & FLAG_WEIGHTED != 0,
            sorted: flags & FLAG_SORTED != 0,
            nodes: u64::from_le_bytes(h[16..24].try_into().unwrap()),
            edges: u64::from_le_bytes(h[24..32].try_into().unwrap()),
            checksum: u64::from_le_bytes(h[32..40].try_into().unwrap()),
        })
    }

    /// Byte offsets `(row_ptr, col, weights, total_len)` implied by the
    /// header, with overflow checks.
    fn layout(&self) -> Result<(u64, u64, u64, u64), ParseError> {
        let overflow = || image_err("section sizes overflow (corrupt header)");
        let row_bytes = self
            .nodes
            .checked_add(1)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(overflow)?;
        let col_bytes = self.edges.checked_mul(4).ok_or_else(overflow)?;
        let w_bytes = if self.weighted { col_bytes } else { 0 };
        let col_off = HEADER_LEN.checked_add(row_bytes).ok_or_else(overflow)?;
        let w_off = col_off.checked_add(col_bytes).ok_or_else(overflow)?;
        let total = w_off.checked_add(w_bytes).ok_or_else(overflow)?;
        Ok((HEADER_LEN, col_off, w_off, total))
    }
}

/// Writes `graph` as a `minnow-csr-image/v1` document.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_image_to<W: Write>(graph: &Csr, writer: W) -> io::Result<()> {
    let (row_ptr, col, weights) = graph.raw_parts();
    let header = Header {
        weighted: graph.is_weighted(),
        sorted: graph.is_sorted(),
        nodes: graph.nodes() as u64,
        edges: graph.edges() as u64,
        checksum: combine_digests(
            digest_u64s(row_ptr),
            digest_u32s(col),
            digest_u32s(weights),
        ),
    };
    let mut w = BufWriter::new(writer);
    w.write_all(&header.encode())?;
    for v in row_ptr {
        w.write_all(&v.to_le_bytes())?;
    }
    for v in col {
        w.write_all(&v.to_le_bytes())?;
    }
    for v in weights {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Writes `graph` as a `minnow-csr-image/v1` file at `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_image(graph: &Csr, path: &Path) -> io::Result<()> {
    write_image_to(graph, File::create(path)?)
}

/// Assembles an image file from a finished row-pointer array plus col and
/// weight streams sitting in temp files — the back half of the streaming
/// ingest pipeline, which never holds the edge sections in memory.
///
/// `col_digest`/`weights_digest` are the FNV-1a digests of the temp files'
/// contents, computed while they were written.
pub(crate) fn assemble_image(
    path: &Path,
    row_ptr: &[u64],
    sorted: bool,
    col_src: &mut File,
    col_digest: u64,
    weights_src: Option<(&mut File, u64)>,
    edges: u64,
) -> io::Result<()> {
    use std::io::Seek;
    let (weights_digest, weighted) = match &weights_src {
        Some((_, d)) => (*d, true),
        None => (digest_bytes(&[]), false),
    };
    let header = Header {
        weighted,
        sorted,
        nodes: row_ptr.len() as u64 - 1,
        edges,
        checksum: combine_digests(digest_u64s(row_ptr), col_digest, weights_digest),
    };
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&header.encode())?;
    for v in row_ptr {
        w.write_all(&v.to_le_bytes())?;
    }
    col_src.seek(io::SeekFrom::Start(0))?;
    io::copy(col_src, &mut w)?;
    if let Some((weights, _)) = weights_src {
        weights.seek(io::SeekFrom::Start(0))?;
        io::copy(weights, &mut w)?;
    }
    w.flush()
}

/// Loads a `minnow-csr-image/v1` file.
///
/// With [`LoadMode::Mmap`] (or [`LoadMode::Auto`] where mapping works) the
/// returned [`Csr`] borrows its sections zero-copy from a shared read-only
/// mapping; with [`LoadMode::Read`] they are copied into owned vectors.
/// Either way the section checksum and every CSR invariant are verified
/// before the graph is returned.
///
/// # Errors
///
/// Returns a structured [`ParseError`] for I/O failures, short/overlong
/// files, bad magic, wrong endianness, unsupported versions, unknown flags,
/// checksum mismatches, and invariant violations. Never panics on corrupt
/// input.
pub fn load_image(path: &Path, mode: LoadMode) -> Result<Csr, ParseError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN {
        return Err(image_err(format!(
            "file is {file_len} bytes, smaller than the {HEADER_LEN}-byte header \
             (truncated?)"
        )));
    }
    let mut raw = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut raw)?;
    let header = Header::decode(&raw)?;
    let (_, col_off, w_off, total) = header.layout()?;
    if file_len != total {
        return Err(image_err(format!(
            "file is {file_len} bytes but the header implies {total} \
             (truncated or corrupt)"
        )));
    }

    // The zero-copy path reinterprets mapped bytes as host integers, which
    // is only the serialized little-endian format on little-endian hosts.
    let mappable = cfg!(target_endian = "little");
    match mode {
        LoadMode::Mmap => {
            if !mappable {
                return Err(image_err(
                    "zero-copy load requires a little-endian host; use read mode",
                ));
            }
            load_mapped(&file, &header, col_off, w_off)
        }
        LoadMode::Auto => {
            if mappable {
                if let Ok(g) = load_mapped(&file, &header, col_off, w_off) {
                    return Ok(g);
                }
            }
            load_buffered(file, &header)
        }
        LoadMode::Read => load_buffered(file, &header),
    }
}

fn load_mapped(file: &File, header: &Header, col_off: u64, w_off: u64) -> Result<Csr, ParseError> {
    let map = Arc::new(Mapping::of_file(file)?);
    let bytes = map.bytes();
    let row_count = header.nodes as usize + 1;
    let col_count = header.edges as usize;
    let w_count = if header.weighted { col_count } else { 0 };
    let (row_off, col_off, w_off) = (HEADER_LEN as usize, col_off as usize, w_off as usize);

    let checksum = combine_digests(
        digest_bytes(&bytes[row_off..col_off]),
        digest_bytes(&bytes[col_off..w_off]),
        digest_bytes(&bytes[w_off..]),
    );
    if checksum != header.checksum {
        return Err(image_err(format!(
            "checksum mismatch: header says {:#018x}, sections hash to \
             {checksum:#018x} (file corrupt)",
            header.checksum
        )));
    }
    Csr::from_mapped(
        map,
        (row_off, row_count),
        (col_off, col_count),
        (w_off, w_count),
        header.sorted,
    )
    .map_err(|e| image_err(format!("invalid CSR in image: {e}")))
}

fn load_buffered(file: File, header: &Header) -> Result<Csr, ParseError> {
    let mut r = BufReader::new(file);
    let mut row_ptr = Vec::with_capacity(header.nodes as usize + 1);
    let mut buf8 = [0u8; 8];
    let mut row_digest = Fnv::new();
    for _ in 0..header.nodes + 1 {
        r.read_exact(&mut buf8)?;
        row_digest.update(&buf8);
        row_ptr.push(u64::from_le_bytes(buf8));
    }
    let mut read_u32s = |count: u64| -> Result<(Vec<u32>, u64), ParseError> {
        let mut out = Vec::with_capacity(count as usize);
        let mut digest = Fnv::new();
        let mut buf4 = [0u8; 4];
        for _ in 0..count {
            r.read_exact(&mut buf4)?;
            digest.update(&buf4);
            out.push(u32::from_le_bytes(buf4));
        }
        Ok((out, digest.finish()))
    };
    let (col, col_digest) = read_u32s(header.edges)?;
    let (weights, w_digest) = if header.weighted {
        read_u32s(header.edges)?
    } else {
        (Vec::new(), digest_bytes(&[]))
    };
    let checksum = combine_digests(row_digest.finish(), col_digest, w_digest);
    if checksum != header.checksum {
        return Err(image_err(format!(
            "checksum mismatch: header says {:#018x}, sections hash to \
             {checksum:#018x} (file corrupt)",
            header.checksum
        )));
    }
    Csr::from_parts(row_ptr, col, weights, header.sorted)
        .map_err(|e| image_err(format!("invalid CSR in image: {e}")))
}

/// A [`MemoryImage`] over one graph laid out by an [`AddressMap`].
///
/// IMP-style prefetchers chase `A[B[i]]` by reading the index array `B` out
/// of cache; this backs the simulated edge-array region with the actual CSR
/// contents so such prefetchers can dereference edge records to destination
/// node ids.
#[derive(Debug, Clone)]
pub struct GraphImage<'a> {
    graph: &'a Csr,
    map: AddressMap,
}

impl<'a> GraphImage<'a> {
    /// Wraps `graph` under `map`'s layout.
    pub fn new(graph: &'a Csr, map: AddressMap) -> Self {
        GraphImage { graph, map }
    }

    /// The address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }
}

impl MemoryImage for GraphImage<'_> {
    fn read_u64(&self, addr: u64) -> Option<u64> {
        // Edge records: 16B each, destination id in the first word.
        if addr >= EDGE_BASE {
            let offset = addr - EDGE_BASE;
            let idx = (offset / 16) as usize;
            if offset.is_multiple_of(16) && idx < self.graph.edges() {
                return Some(self.graph.edge_dst(idx) as u64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::NodeId;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("minnow-image-test-{}-{tag}.mcsr", std::process::id()))
    }

    fn sample() -> Csr {
        let mut g = Csr::from_edges(
            4,
            &[(0, 2), (0, 1), (1, 3), (3, 0), (3, 2)],
            Some(&[5, 2, 9, 1, 4]),
        );
        g.sort_adjacency();
        g
    }

    #[test]
    fn reads_edge_destinations() {
        let g = Csr::from_edges(3, &[(0, 2), (0, 1), (2, 0)], None);
        let map = AddressMap::standard();
        let img = GraphImage::new(&g, map);
        assert_eq!(img.read_u64(map.edge_addr(0)), Some(2));
        assert_eq!(img.read_u64(map.edge_addr(1)), Some(1));
        assert_eq!(img.read_u64(map.edge_addr(2)), Some(0));
    }

    #[test]
    fn out_of_range_reads_are_none() {
        let g = Csr::from_edges(2, &[(0, 1)], None);
        let map = AddressMap::standard();
        let img = GraphImage::new(&g, map);
        assert_eq!(img.read_u64(map.edge_addr(5)), None);
        assert_eq!(img.read_u64(map.edge_addr(0) + 8), None, "mid-record");
        assert_eq!(img.read_u64(0x100), None, "outside edge region");
    }

    #[test]
    fn image_roundtrip_buffered_and_mapped() {
        let g = sample();
        let path = temp_path("roundtrip");
        write_image(&g, &path).unwrap();

        let buffered = load_image(&path, LoadMode::Read).unwrap();
        assert_eq!(g, buffered);
        assert!(!buffered.is_mapped());

        let auto = load_image(&path, LoadMode::Auto).unwrap();
        assert_eq!(g, auto);
        #[cfg(unix)]
        {
            let mapped = load_image(&path, LoadMode::Mmap).unwrap();
            assert_eq!(g, mapped);
            assert!(mapped.is_mapped());
            assert!(mapped.is_sorted());
            // Mapped graphs survive mutation by copying out.
            let mut owned = mapped.clone();
            owned.sort_adjacency();
            assert_eq!(owned, mapped);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unweighted_empty_and_isolated_graphs_roundtrip() {
        for g in [
            Csr::from_edges(0, &[], None),
            Csr::from_edges(5, &[], None),
            Csr::from_edges(3, &[(1, 0), (1, 2)], None),
        ] {
            let path = temp_path(&format!("shape-{}-{}", g.nodes(), g.edges()));
            write_image(&g, &path).unwrap();
            for mode in [LoadMode::Read, LoadMode::Auto] {
                let back = load_image(&path, mode).unwrap();
                assert_eq!(g, back);
                assert!(!back.is_weighted());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn corrupted_section_fails_checksum() {
        let path = temp_path("corrupt");
        write_image(&sample(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        for mode in [LoadMode::Read, LoadMode::Auto, LoadMode::Mmap] {
            let err = load_image(&path, mode).unwrap_err();
            if cfg!(unix) || !matches!(mode, LoadMode::Mmap) {
                assert!(err.to_string().contains("checksum"), "{mode:?}: {err}");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let path = temp_path("truncated");
        write_image(&sample(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 7, 63, bytes.len() - 3] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = load_image(&path, LoadMode::Auto).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("header"),
                "cut={cut}: {msg}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_wrong_endian_and_future_version() {
        let path = temp_path("header");
        write_image(&sample(), &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[8..10].copy_from_slice(&ENDIAN_MARKER.swap_bytes().to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = load_image(&path, LoadMode::Auto).unwrap_err();
        assert!(err.to_string().contains("big-endian"), "{err}");

        let mut bad = good.clone();
        bad[10..12].copy_from_slice(&2u16.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = load_image(&path, LoadMode::Auto).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = load_image(&path, LoadMode::Auto).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad = good;
        bad[12] |= 0x80; // unknown flag bit
        std::fs::write(&path, &bad).unwrap();
        let err = load_image(&path, LoadMode::Auto).unwrap_err();
        assert!(err.to_string().contains("flag"), "{err}");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sorted_flag_is_preserved_and_enables_has_edge() {
        let path = temp_path("sorted");
        let g = sample();
        write_image(&g, &path).unwrap();
        let back = load_image(&path, LoadMode::Auto).unwrap();
        assert!(back.is_sorted());
        let (found, _) = back.has_edge(0, 2);
        assert!(found);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn neighbors_match_through_every_mode() {
        let path = temp_path("modes");
        let g = sample();
        write_image(&g, &path).unwrap();
        let modes: &[LoadMode] = if cfg!(unix) {
            &[LoadMode::Read, LoadMode::Auto, LoadMode::Mmap]
        } else {
            &[LoadMode::Read, LoadMode::Auto]
        };
        for &mode in modes {
            let back = load_image(&path, mode).unwrap();
            for v in 0..g.nodes() as NodeId {
                assert_eq!(g.neighbors(v), back.neighbors(v));
                let a: Vec<_> = g.edges_of(v).collect();
                let b: Vec<_> = back.edges_of(v).collect();
                assert_eq!(a, b);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

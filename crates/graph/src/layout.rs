//! Synthetic address map for the simulated memory hierarchy.
//!
//! The paper stores graphs in "standard CSR format, with 32B nodes (64B for
//! TC) and 16B edges" (§6.2). [`AddressMap`] reproduces that layout inside
//! the simulator's 64-bit address space so that cache behaviour (lines per
//! node, edges per line, set conflicts) matches the paper's geometry.
//!
//! Address regions are widely separated so that distinct structures never
//! alias:
//!
//! | region            | base                | contents                     |
//! |-------------------|---------------------|------------------------------|
//! | nodes             | `0x1000_0000_0000`  | `node_bytes` per node        |
//! | edges             | `0x2000_0000_0000`  | 16B per edge                 |
//! | worklist heap     | `0x3000_0000_0000`  | spilled task storage         |
//! | task records      | `0x4000_0000_0000`  | 16B per task                 |
//! | per-core private  | `0x7000_0000_0000`  | stacks, allocator metadata   |

/// Byte size of one edge record (destination id + weight, padded — §6.2).
pub const EDGE_BYTES: u64 = 16;

/// Base of the node array region.
pub const NODE_BASE: u64 = 0x1000_0000_0000;
/// Base of the edge array region.
pub const EDGE_BASE: u64 = 0x2000_0000_0000;
/// Base of the worklist spill heap.
pub const WORKLIST_BASE: u64 = 0x3000_0000_0000;
/// Base of the task-record region.
pub const TASK_BASE: u64 = 0x4000_0000_0000;
/// Base of the per-core private region (stacks, spills).
pub const PRIVATE_BASE: u64 = 0x7000_0000_0000;

/// Maps graph entities to simulated addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    node_bytes: u64,
}

impl AddressMap {
    /// Standard layout: 32B nodes (all workloads except TC).
    pub fn standard() -> Self {
        AddressMap { node_bytes: 32 }
    }

    /// Triangle-counting layout: 64B nodes (paper §6.2).
    pub fn wide_nodes() -> Self {
        AddressMap { node_bytes: 64 }
    }

    /// Bytes per node record.
    pub fn node_bytes(&self) -> u64 {
        self.node_bytes
    }

    /// Address of node `v`'s record.
    pub fn node_addr(&self, v: u32) -> u64 {
        NODE_BASE + v as u64 * self.node_bytes
    }

    /// Address of edge record `e` (a CSR edge index).
    pub fn edge_addr(&self, e: usize) -> u64 {
        EDGE_BASE + e as u64 * EDGE_BYTES
    }

    /// Address of task record `t` (16B records in the worklist).
    pub fn task_addr(&self, t: u64) -> u64 {
        TASK_BASE + t * 16
    }

    /// Address of a worklist heap slot (bucket storage for spilled tasks).
    pub fn worklist_addr(&self, slot: u64) -> u64 {
        WORKLIST_BASE + slot * 16
    }

    /// A per-core private address (stack frames, register spill slots).
    pub fn private_addr(&self, core: usize, offset: u64) -> u64 {
        PRIVATE_BASE + ((core as u64) << 32) + offset
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_nodes_are_32b() {
        let m = AddressMap::standard();
        assert_eq!(m.node_addr(0), NODE_BASE);
        assert_eq!(m.node_addr(1) - m.node_addr(0), 32);
        // Two nodes share one 64B cache line.
        assert_eq!(m.node_addr(0) >> 6, m.node_addr(1) >> 6);
        assert_ne!(m.node_addr(0) >> 6, m.node_addr(2) >> 6);
    }

    #[test]
    fn wide_nodes_are_64b() {
        let m = AddressMap::wide_nodes();
        assert_eq!(m.node_bytes(), 64);
        assert_ne!(m.node_addr(0) >> 6, m.node_addr(1) >> 6);
    }

    #[test]
    fn four_edges_per_line() {
        let m = AddressMap::standard();
        assert_eq!(m.edge_addr(0) >> 6, m.edge_addr(3) >> 6);
        assert_ne!(m.edge_addr(0) >> 6, m.edge_addr(4) >> 6);
    }

    #[test]
    fn regions_do_not_overlap() {
        let m = AddressMap::standard();
        let node_top = m.node_addr(u32::MAX);
        assert!(node_top < EDGE_BASE);
        assert!(m.edge_addr(1 << 32) < WORKLIST_BASE);
        assert!(m.worklist_addr(1 << 30) < TASK_BASE);
        assert!(m.task_addr(1 << 30) < PRIVATE_BASE);
    }

    #[test]
    fn private_regions_are_per_core() {
        let m = AddressMap::standard();
        assert_ne!(m.private_addr(0, 0), m.private_addr(1, 0));
        assert_eq!(m.private_addr(2, 64) - m.private_addr(2, 0), 64);
    }
}

//! Uniform random graph generator — the `r4-2e23` analogue (Table 1:
//! random graph with average degree 4, small max degree, moderate diameter).

use rand::Rng;

use super::rng;
use crate::csr::{Csr, NodeId};

/// Configuration for the uniform random generator.
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Node count.
    pub nodes: usize,
    /// Outgoing edges drawn per node before symmetrization.
    pub degree: usize,
}

impl UniformConfig {
    /// `nodes` nodes with `degree` random out-edges each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, degree: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        UniformConfig { nodes, degree }
    }
}

/// Generates the symmetric uniform random graph.
pub fn generate(cfg: &UniformConfig, seed: u64) -> Csr {
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(cfg.nodes * cfg.degree);
    for u in 0..cfg.nodes as NodeId {
        for _ in 0..cfg.degree {
            let v = r.gen_range(0..cfg.nodes as NodeId);
            if v != u {
                edges.push((u, v));
            }
        }
    }
    Csr::from_edges(cfg.nodes, &edges, None).symmetrize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsu::Dsu;

    #[test]
    fn degree_concentrates_near_twice_draw() {
        let g = generate(&UniformConfig::new(2000, 4), 5);
        g.validate().unwrap();
        let avg = g.edges() as f64 / g.nodes() as f64;
        assert!(avg > 6.0 && avg < 9.0, "avg degree {avg}");
        let (_, maxd) = g.max_degree();
        assert!(maxd < 40, "uniform graphs have no hubs, got {maxd}");
    }

    #[test]
    fn mostly_connected_at_degree_four() {
        let g = generate(&UniformConfig::new(1000, 4), 7);
        let mut d = Dsu::new(g.nodes());
        for v in 0..g.nodes() as NodeId {
            for &n in g.neighbors(v) {
                d.union(v, n);
            }
        }
        assert!(d.set_size(0) > 950, "giant component expected");
    }

    #[test]
    fn no_self_loops() {
        let g = generate(&UniformConfig::new(500, 4), 11);
        for v in 0..g.nodes() as NodeId {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&UniformConfig::new(300, 3), 1);
        let b = generate(&UniformConfig::new(300, 3), 1);
        let c = generate(&UniformConfig::new(300, 3), 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

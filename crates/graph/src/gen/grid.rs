//! 2-D grid generator — the road-network analogue (`USA-road-d.W` in
//! Table 1: high estimated diameter, max degree 9).
//!
//! Road networks are planar, near-mesh graphs: degree ≤ 4-ish, diameter
//! proportional to the geometric extent. A `w x h` 4-neighbor grid has
//! diameter `w + h - 2` and degree ≤ 4, reproducing exactly the property the
//! paper leans on ("graph inputs with high diameters and low degrees will be
//! more sensitive to priority ordering", §3.1).

use rand::Rng;

use super::{draw_weights, rng};
use crate::csr::{Csr, NodeId};

/// Configuration for the grid generator.
#[derive(Debug, Clone)]
pub struct GridConfig {
    width: usize,
    height: usize,
    weights: Option<std::ops::RangeInclusive<u32>>,
    /// Fraction of extra random "shortcut" edges (diagonal roads), per node.
    shortcut_prob: f64,
}

impl GridConfig {
    /// A `width x height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        GridConfig {
            width,
            height,
            weights: None,
            shortcut_prob: 0.0,
        }
    }

    /// Attach uniform random edge weights from `range`.
    pub fn weighted(mut self, range: std::ops::RangeInclusive<u32>) -> Self {
        self.weights = Some(range);
        self
    }

    /// Adds diagonal shortcut edges with the given per-node probability
    /// (road networks have occasional non-grid connections; also bumps the
    /// max degree above 4 toward the road graph's 9).
    pub fn shortcuts(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.shortcut_prob = prob;
        self
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

/// Generates the symmetric grid graph.
pub fn generate(cfg: &GridConfig, seed: u64) -> Csr {
    let mut r = rng(seed);
    let (w, h) = (cfg.width, cfg.height);
    let id = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(4 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if cfg.shortcut_prob > 0.0 && x + 1 < w && y + 1 < h && r.gen_bool(cfg.shortcut_prob)
            {
                edges.push((id(x, y), id(x + 1, y + 1)));
            }
        }
    }
    let directed = if let Some(range) = &cfg.weights {
        let ws = draw_weights(&mut r, range.clone(), edges.len());
        Csr::from_edges(cfg.nodes(), &edges, Some(&ws))
    } else {
        Csr::from_edges(cfg.nodes(), &edges, None)
    };
    directed.symmetrize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsu::Dsu;

    #[test]
    fn grid_is_connected_and_low_degree() {
        let g = generate(&GridConfig::new(10, 10), 1);
        g.validate().unwrap();
        assert_eq!(g.nodes(), 100);
        let (_, maxd) = g.max_degree();
        assert!(maxd <= 4);
        let mut d = Dsu::new(g.nodes());
        for v in 0..g.nodes() as NodeId {
            for &n in g.neighbors(v) {
                d.union(v, n);
            }
        }
        assert_eq!(d.components(), 1);
    }

    #[test]
    fn grid_edge_count_matches_formula() {
        // Undirected w*h grid: w*(h-1) + h*(w-1) edges; CSR stores both dirs.
        let g = generate(&GridConfig::new(5, 7), 1);
        assert_eq!(g.edges(), 2 * (5 * 6 + 7 * 4));
    }

    #[test]
    fn weighted_grid_carries_weights() {
        let g = generate(&GridConfig::new(4, 4), 2);
        assert!(!g.is_weighted());
        let gw = generate(&GridConfig::new(4, 4).weighted(1..=9), 2);
        assert!(gw.is_weighted());
        for e in 0..gw.edges() {
            assert!((1..=9).contains(&gw.edge_weight(e)));
        }
    }

    #[test]
    fn shortcuts_raise_degree() {
        let g = generate(&GridConfig::new(30, 30).shortcuts(0.5), 3);
        let (_, maxd) = g.max_degree();
        assert!(maxd > 4, "shortcuts must add degree, got {maxd}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GridConfig::new(8, 8).weighted(1..=5).shortcuts(0.2), 9);
        let b = generate(&GridConfig::new(8, 8).weighted(1..=5).shortcuts(0.2), 9);
        assert_eq!(a, b);
    }
}

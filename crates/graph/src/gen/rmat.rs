//! RMAT / Kronecker generator — the Graph500 `rmat16-2e22` analogue
//! (Table 1: scale-free, one node with 18.4M edges = 27% of the graph).
//!
//! Recursive-matrix sampling with the Graph500 partition probabilities
//! produces heavy-tailed degree distributions including a single dominant
//! hub — the property that motivates the paper's *task splitting*
//! optimization (§6.2.1: "the maximum speedup cannot exceed 3.65x" without
//! it) and G500's cache-overflow behaviour at high prefetch credits (§6.3.2).

use rand::Rng;

use super::rng;
use crate::csr::{Csr, NodeId};

/// Configuration for the RMAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the node count.
    pub scale: u32,
    /// Edges per node (Graph500 uses 16).
    pub edge_factor: usize,
    /// Partition probabilities; must sum to ~1.
    pub a: f64,
    /// Top-right partition probability.
    pub b: f64,
    /// Bottom-left partition probability.
    pub c: f64,
}

impl RmatConfig {
    /// Graph500 reference parameters (a=0.57, b=c=0.19, d=0.05).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0` or `scale > 28`.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        assert!(scale > 0 && scale <= 28, "scale out of supported range");
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Node count implied by the scale.
    pub fn nodes(&self) -> usize {
        1usize << self.scale
    }
}

/// Streams the raw directed RMAT edge samples (self-loops already dropped,
/// **before** symmetrization and dedup), invoking `f` per edge.
///
/// This is the bounded-memory face of the generator: `minnow-ingest --gen`
/// writes these samples straight to an edge-list or Graph500 file without
/// holding them, and ingesting that file with symmetrize + dedup +
/// `nodes_hint = cfg.nodes()` reproduces [`generate`]'s graph exactly
/// (same seed, same sampling sequence).
pub fn for_each_edge(cfg: &RmatConfig, seed: u64, mut f: impl FnMut(NodeId, NodeId)) {
    let mut r = rng(seed);
    let m = cfg.nodes() * cfg.edge_factor;
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..cfg.scale {
            let x: f64 = r.gen();
            let (du, dv) = if x < cfg.a {
                (0, 0)
            } else if x < cfg.a + cfg.b {
                (0, 1)
            } else if x < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            f(u as NodeId, v as NodeId);
        }
    }
}

/// Generates the symmetric RMAT graph.
pub fn generate(cfg: &RmatConfig, seed: u64) -> Csr {
    let n = cfg.nodes();
    let mut edges = Vec::with_capacity(n * cfg.edge_factor);
    for_each_edge(cfg, seed, |u, v| edges.push((u, v)));
    Csr::from_edges(n, &edges, None).symmetrize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_has_dominant_hub() {
        let g = generate(&RmatConfig::graph500(12, 16), 3);
        g.validate().unwrap();
        let (_, maxd) = g.max_degree();
        let avg = g.edges() as f64 / g.nodes() as f64;
        assert!(
            maxd as f64 > 30.0 * avg,
            "scale-free hub expected: max {maxd}, avg {avg:.1}"
        );
    }

    #[test]
    fn hub_owns_significant_edge_share() {
        // The paper's rmat16-2e22 has one node with 27% of all edges.
        let g = generate(&RmatConfig::graph500(12, 16), 3);
        let (_, maxd) = g.max_degree();
        let share = maxd as f64 / g.edges() as f64;
        assert!(share > 0.01, "hub share {share:.4} too small");
    }

    #[test]
    fn low_diameter_small_world() {
        use crate::stats::GraphStats;
        let g = generate(&RmatConfig::graph500(10, 16), 5);
        let s = GraphStats::compute(&g, 0);
        assert!(s.est_diameter <= 12, "RMAT diameter {}", s.est_diameter);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&RmatConfig::graph500(8, 8), 1);
        let b = generate(&RmatConfig::graph500(8, 8), 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        let _ = RmatConfig::graph500(0, 16);
    }

    #[test]
    fn streamed_samples_reproduce_generate() {
        use crate::ingest::{ingest_to_csr, IngestOptions};
        use crate::io::GraphSource;
        let cfg = RmatConfig::graph500(8, 8);
        let mut text = String::new();
        for_each_edge(&cfg, 11, |u, v| {
            text.push_str(&format!("{u} {v}\n"));
        });
        let (ingested, _) = ingest_to_csr(
            GraphSource::EdgeList,
            text.as_bytes(),
            &IngestOptions {
                symmetrize: true,
                dedup: true,
                drop_self_loops: true,
                nodes_hint: Some(cfg.nodes() as u64),
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ingested, generate(&cfg, 11));
    }
}

//! Power-law (Chung-Lu/Zipf) generator — the Wikipedia / wiki-Talk analogue
//! (Table 1: low diameter, strong hubs but no single dominant node).

use super::{rng, Zipf};
use crate::csr::{Csr, NodeId};
use rand::Rng;

/// Configuration for the power-law generator.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Node count.
    pub nodes: usize,
    /// Average out-degree before symmetrization.
    pub avg_degree: usize,
    /// Zipf exponent over target popularity (≈1.0–1.5 for web graphs).
    pub alpha: f64,
}

impl PowerLawConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `alpha <= 0`.
    pub fn new(nodes: usize, avg_degree: usize, alpha: f64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(alpha > 0.0, "alpha must be positive");
        PowerLawConfig {
            nodes,
            avg_degree,
            alpha,
        }
    }
}

/// Generates the symmetric power-law graph. Targets are drawn from a Zipf
/// distribution over a random permutation of node ids (so hub ids are not
/// clustered at the low end of the address space).
pub fn generate(cfg: &PowerLawConfig, seed: u64) -> Csr {
    let mut r = rng(seed);
    let zipf = Zipf::new(cfg.nodes, cfg.alpha);
    // Random rank -> node permutation.
    let mut perm: Vec<NodeId> = (0..cfg.nodes as NodeId).collect();
    for i in (1..perm.len()).rev() {
        let j = r.gen_range(0..=i);
        perm.swap(i, j);
    }
    let m = cfg.nodes * cfg.avg_degree;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.gen_range(0..cfg.nodes as NodeId);
        let v = perm[zipf.sample(&mut r) as usize];
        if u != v {
            edges.push((u, v));
        }
    }
    Csr::from_edges(cfg.nodes, &edges, None).symmetrize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_has_hubs_but_no_monopoly() {
        let g = generate(&PowerLawConfig::new(4000, 6, 1.1), 13);
        g.validate().unwrap();
        let (_, maxd) = g.max_degree();
        let avg = g.edges() as f64 / g.nodes() as f64;
        assert!(maxd as f64 > 8.0 * avg, "hubs expected: {maxd} vs avg {avg:.1}");
        let share = maxd as f64 / g.edges() as f64;
        assert!(share < 0.25, "no single dominant node: {share:.3}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&PowerLawConfig::new(500, 5, 1.2), 4);
        let b = generate(&PowerLawConfig::new(500, 5, 1.2), 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_nonpositive_alpha() {
        let _ = PowerLawConfig::new(10, 2, 0.0);
    }
}

//! Bipartite rating-graph generator — the `amazon-ratings` analogue
//! (Table 1), used by the BC (bipartite coloring) workload.
//!
//! Users (partition A) rate items (partition B) with Zipf-distributed item
//! popularity. The graph is bipartite by construction, so 2-coloring
//! succeeds — which the BC workload verifies.

use rand::Rng;

use super::{rng, Zipf};
use crate::csr::{Csr, NodeId};

/// Configuration for the bipartite generator.
#[derive(Debug, Clone, Copy)]
pub struct BipartiteConfig {
    /// Number of user nodes (partition A: ids `0..users`).
    pub users: usize,
    /// Number of item nodes (partition B: ids `users..users+items`).
    pub items: usize,
    /// Average ratings per user.
    pub ratings_per_user: usize,
    /// Zipf exponent of item popularity.
    pub alpha: f64,
}

impl BipartiteConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either partition is empty.
    pub fn new(users: usize, items: usize, ratings_per_user: usize, alpha: f64) -> Self {
        assert!(users > 0 && items > 0, "both partitions must be non-empty");
        BipartiteConfig {
            users,
            items,
            ratings_per_user,
            alpha,
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.users + self.items
    }
}

/// Generates the symmetric bipartite rating graph.
pub fn generate(cfg: &BipartiteConfig, seed: u64) -> Csr {
    let mut r = rng(seed);
    let zipf = Zipf::new(cfg.items, cfg.alpha);
    let mut edges = Vec::with_capacity(cfg.users * cfg.ratings_per_user);
    for u in 0..cfg.users as NodeId {
        for _ in 0..cfg.ratings_per_user {
            let item = cfg.users as NodeId + zipf.sample(&mut r);
            edges.push((u, item));
        }
        // Ensure every user has at least one rating even at 0 requested.
        if cfg.ratings_per_user == 0 {
            let item = cfg.users as NodeId + r.gen_range(0..cfg.items as NodeId);
            edges.push((u, item));
        }
    }
    Csr::from_edges(cfg.nodes(), &edges, None).symmetrize()
}

/// Returns the partition of a node in a graph generated with `cfg`:
/// `false` for users, `true` for items.
pub fn partition_of(cfg: &BipartiteConfig, v: NodeId) -> bool {
    (v as usize) >= cfg.users
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_cross_partitions_only() {
        let cfg = BipartiteConfig::new(300, 100, 5, 1.1);
        let g = generate(&cfg, 21);
        g.validate().unwrap();
        for v in 0..g.nodes() as NodeId {
            for &n in g.neighbors(v) {
                assert_ne!(
                    partition_of(&cfg, v),
                    partition_of(&cfg, n),
                    "edge {v}-{n} stays inside a partition"
                );
            }
        }
    }

    #[test]
    fn popular_items_emerge() {
        let cfg = BipartiteConfig::new(1000, 200, 10, 1.2);
        let g = generate(&cfg, 8);
        let (hub, maxd) = g.max_degree();
        assert!(partition_of(&cfg, hub), "hub must be an item");
        let avg_item = 1000.0 * 10.0 / 200.0;
        assert!(maxd as f64 > 2.0 * avg_item, "hub degree {maxd}");
    }

    #[test]
    fn zero_ratings_still_connects_users() {
        let cfg = BipartiteConfig::new(50, 10, 0, 1.0);
        let g = generate(&cfg, 2);
        for u in 0..50 {
            assert!(g.out_degree(u) >= 1);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = BipartiteConfig::new(100, 40, 3, 1.0);
        assert_eq!(generate(&cfg, 5), generate(&cfg, 5));
    }
}

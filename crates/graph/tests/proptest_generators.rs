//! Property tests over the graph generators and CSR transformations.

use proptest::prelude::*;

use minnow_graph::gen::bipartite::{self, BipartiteConfig};
use minnow_graph::gen::grid::{self, GridConfig};
use minnow_graph::gen::powerlaw::{self, PowerLawConfig};
use minnow_graph::gen::rmat::{self, RmatConfig};
use minnow_graph::gen::uniform::{self, UniformConfig};
use minnow_graph::{io, Csr, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator yields a structurally valid, symmetric CSR.
    #[test]
    fn generators_produce_valid_symmetric_graphs(seed in 0u64..1000, pick in 0usize..5) {
        let g: Csr = match pick {
            0 => grid::generate(&GridConfig::new(8, 6).weighted(1..=9), seed),
            1 => uniform::generate(&UniformConfig::new(150, 3), seed),
            2 => rmat::generate(&RmatConfig::graph500(7, 4), seed),
            3 => powerlaw::generate(&PowerLawConfig::new(120, 4, 1.2), seed),
            _ => bipartite::generate(&BipartiteConfig::new(60, 30, 3, 1.0), seed),
        };
        prop_assert!(g.validate().is_ok());
        // Symmetry: u in adj(v) <=> v in adj(u).
        for v in 0..g.nodes() as NodeId {
            for &u in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(u).contains(&v),
                    "edge {v}->{u} missing its reverse"
                );
            }
        }
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_is_deterministic(seed in 0u64..500) {
        let a = uniform::generate(&UniformConfig::new(100, 4), seed);
        let b = uniform::generate(&UniformConfig::new(100, 4), seed);
        prop_assert_eq!(a, b);
    }

    /// sort_adjacency preserves the multiset of (dst, weight) pairs per node.
    #[test]
    fn sorting_preserves_adjacency(edges in prop::collection::vec((0u32..30, 0u32..30, 1u32..9), 0..150)) {
        let pairs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w).collect();
        let g = Csr::from_edges(30, &pairs, Some(&weights));
        let mut sorted = g.clone();
        sorted.sort_adjacency();
        prop_assert!(sorted.is_sorted());
        for v in 0..30u32 {
            let mut a: Vec<_> = g.edges_of(v).map(|(_, d, w)| (d, w)).collect();
            let mut b: Vec<_> = sorted.edges_of(v).map(|(_, d, w)| (d, w)).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "node {}", v);
            // And the sorted adjacency really is sorted.
            let n: Vec<_> = sorted.neighbors(v).to_vec();
            prop_assert!(n.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// has_edge agrees with a linear scan on sorted graphs.
    #[test]
    fn binary_search_matches_linear_scan(edges in prop::collection::vec((0u32..20, 0u32..20), 1..100),
                                         u in 0u32..20, v in 0u32..20) {
        let mut g = Csr::from_edges(20, &edges, None);
        g.sort_adjacency();
        let (found, probes) = g.has_edge(u, v);
        prop_assert_eq!(found, g.neighbors(u).contains(&v));
        prop_assert!(probes.len() <= 8, "log2(100) probes at most");
        for p in probes {
            let r = g.edge_range(u);
            prop_assert!(r.contains(&p), "probe outside adjacency");
        }
    }

    /// Symmetrize is idempotent.
    #[test]
    fn symmetrize_idempotent(edges in prop::collection::vec((0u32..25, 0u32..25), 0..120)) {
        let g = Csr::from_edges(25, &edges, None);
        let s1 = g.symmetrize();
        let s2 = s1.symmetrize();
        prop_assert_eq!(s1, s2);
    }

    /// DIMACS round-trips arbitrary weighted graphs.
    #[test]
    fn dimacs_roundtrip_arbitrary(edges in prop::collection::vec((0u32..15, 0u32..15, 1u32..100), 0..80)) {
        let pairs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w).collect();
        let g = Csr::from_edges(15, &pairs, Some(&weights));
        let mut buf = Vec::new();
        io::write_dimacs(&g, &mut buf).unwrap();
        let g2 = io::read_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(g.nodes(), g2.nodes());
        prop_assert_eq!(g.edges(), g2.edges());
        for v in 0..15u32 {
            let a: Vec<_> = g.edges_of(v).map(|(_, d, w)| (d, w)).collect();
            let b: Vec<_> = g2.edges_of(v).map(|(_, d, w)| (d, w)).collect();
            prop_assert_eq!(a, b);
        }
    }
}

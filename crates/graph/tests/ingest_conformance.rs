//! Ingestion conformance suite: golden tiny fixtures in `tests/fixtures/`
//! rendered in every external format must ingest to **byte-identical** CSRs
//! (offsets, edges, weights — compared both structurally and through the
//! serialized image bytes), with the dedup/self-loop/symmetrization options
//! behaving identically regardless of the source format. Malformed inputs
//! must come back as structured `ParseError`s, never panics.

use std::path::{Path, PathBuf};

use minnow_graph::image::{load_image, write_image_to, LoadMode};
use minnow_graph::ingest::{ingest_file_to_csr, ingest_to_csr, IngestOptions};
use minnow_graph::io::{GraphSource, ParseError};
use minnow_graph::Csr;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn image_bytes(g: &Csr) -> Vec<u8> {
    let mut buf = Vec::new();
    write_image_to(g, &mut buf).unwrap();
    buf
}

/// Canonical in-memory reference for fixture graph U (5 nodes, 6 edges).
fn reference_u() -> Csr {
    let mut g = Csr::from_edges(
        5,
        &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)],
        None,
    );
    g.sort_adjacency();
    g
}

/// Canonical in-memory reference for fixture graph W (4 nodes, weighted).
fn reference_w() -> Csr {
    let mut g = Csr::from_edges(
        4,
        &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)],
        Some(&[5, 3, 7, 2, 9]),
    );
    g.sort_adjacency();
    g
}

#[test]
fn unweighted_fixture_is_byte_identical_across_all_four_formats() {
    let reference = reference_u();
    let reference_bytes = image_bytes(&reference);
    // DIMACS cannot express "no weights", so its rendering carries weight 1
    // on every arc and the conformance contract strips them.
    let renderings = [
        ("tiny.el", false),
        ("tiny.mtx", false),
        ("tiny.g500", false),
        ("tiny.gr", true),
    ];
    for (name, strip) in renderings {
        let opts = IngestOptions {
            strip_weights: strip,
            ..IngestOptions::default()
        };
        let (g, report) = ingest_file_to_csr(&fixture(name), None, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(g, reference, "{name} diverges from the reference CSR");
        assert_eq!(
            image_bytes(&g),
            reference_bytes,
            "{name} serializes to different image bytes"
        );
        assert_eq!(report.edges_kept, 6, "{name}");
        assert_eq!(report.nodes, 5, "{name}");
        assert!(!report.weighted, "{name}");
    }
}

#[test]
fn weighted_fixture_is_byte_identical_across_text_formats() {
    let reference = reference_w();
    let reference_bytes = image_bytes(&reference);
    for name in ["tiny_w.el", "tiny_w.mtx", "tiny_w.gr"] {
        let (g, report) = ingest_file_to_csr(&fixture(name), None, &IngestOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(g, reference, "{name} diverges from the reference CSR");
        assert_eq!(image_bytes(&g), reference_bytes, "{name}");
        assert!(report.weighted, "{name}");
        assert_eq!(report.edges_kept, 5, "{name}");
    }
}

#[test]
fn options_behave_identically_across_formats() {
    // Render the messy fixture into the other formats via the plain readers
    // (preserving file order), then check every option combination lands on
    // the same CSR from every rendering.
    let messy = minnow_graph::io::read_edge_list(
        std::fs::read(fixture("messy.el")).unwrap().as_slice(),
    )
    .unwrap();
    let mut as_mtx = Vec::new();
    minnow_graph::io::write_matrix_market(&messy, &mut as_mtx).unwrap();
    let mut as_gr = Vec::new();
    minnow_graph::io::write_dimacs(&messy, &mut as_gr).unwrap();

    let combos = [
        IngestOptions::default(),
        IngestOptions {
            dedup: true,
            ..IngestOptions::default()
        },
        IngestOptions {
            drop_self_loops: true,
            ..IngestOptions::default()
        },
        IngestOptions {
            dedup: true,
            drop_self_loops: true,
            symmetrize: true,
            ..IngestOptions::default()
        },
    ];
    for opts in combos {
        let (from_el, _) =
            ingest_file_to_csr(&fixture("messy.el"), None, &opts).unwrap();
        let (from_mtx, _) =
            ingest_to_csr(GraphSource::MatrixMarket, as_mtx.as_slice(), &opts).unwrap();
        let (from_gr, _) =
            ingest_to_csr(GraphSource::Dimacs, as_gr.as_slice(), &opts).unwrap();
        assert_eq!(from_el, from_mtx, "mtx rendering, opts {opts:?}");
        assert_eq!(from_el, from_gr, "dimacs rendering, opts {opts:?}");
        assert_eq!(image_bytes(&from_el), image_bytes(&from_mtx), "opts {opts:?}");
    }
}

#[test]
fn dedup_and_self_loop_options_are_observable() {
    let path = fixture("messy.el");
    let (plain, r0) = ingest_file_to_csr(&path, None, &IngestOptions::default()).unwrap();
    assert_eq!(r0.edges_read, 7);
    assert_eq!(plain.edges(), 7, "no options: everything kept");

    let (deduped, r1) = ingest_file_to_csr(
        &path,
        None,
        &IngestOptions {
            dedup: true,
            ..IngestOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r1.edges_kept, 5, "three parallel 0->1 edges collapse to one");
    let e = deduped.edge_range(0).start;
    assert_eq!(
        deduped.edge_weight(e),
        4,
        "dedup keeps the minimum weight among duplicates"
    );

    let (no_loops, r2) = ingest_file_to_csr(
        &path,
        None,
        &IngestOptions {
            drop_self_loops: true,
            ..IngestOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r2.edges_kept, 5, "1->1 and 2->2 dropped");
    for v in 0..no_loops.nodes() as u32 {
        assert!(!no_loops.neighbors(v).contains(&v));
    }

    let (sym, _) = ingest_file_to_csr(
        &path,
        None,
        &IngestOptions {
            symmetrize: true,
            dedup: true,
            drop_self_loops: true,
            ..IngestOptions::default()
        },
    )
    .unwrap();
    for v in 0..sym.nodes() as u32 {
        for &u in sym.neighbors(v) {
            assert!(sym.neighbors(u).contains(&v), "missing reverse of {v}->{u}");
        }
    }
}

#[test]
fn symmetric_mtx_matches_explicitly_symmetrized_edges() {
    let (from_sym, _) = ingest_file_to_csr(
        &fixture("tiny_sym.mtx"),
        None,
        &IngestOptions::default(),
    )
    .unwrap();
    // Same undirected triangle (+ one self-loop) written one-directional,
    // symmetrized at ingest. The self-loop has no reverse to add.
    let text = "1 0\n2 0\n2 1\n2 2\n";
    let (from_el, _) = ingest_to_csr(
        GraphSource::EdgeList,
        text.as_bytes(),
        &IngestOptions {
            symmetrize: true,
            dedup: true,
            ..IngestOptions::default()
        },
    )
    .unwrap();
    assert_eq!(from_sym, from_el);
}

#[test]
fn every_rendering_roundtrips_through_the_image_format() {
    let dir = std::env::temp_dir();
    for (name, strip) in [("tiny.el", false), ("tiny_w.gr", false), ("tiny.g500", false), ("tiny.gr", true)] {
        let opts = IngestOptions {
            strip_weights: strip,
            ..IngestOptions::default()
        };
        let (g, _) = ingest_file_to_csr(&fixture(name), None, &opts).unwrap();
        let img = dir.join(format!(
            "minnow-conformance-{}-{name}.mcsr",
            std::process::id()
        ));
        minnow_graph::image::write_image(&g, &img).unwrap();
        for mode in [LoadMode::Read, LoadMode::Auto] {
            let back = load_image(&img, mode).unwrap();
            assert_eq!(g, back, "{name} via {mode:?}");
        }
        #[cfg(unix)]
        {
            let back = load_image(&img, LoadMode::Mmap).unwrap();
            assert_eq!(g, back, "{name} via mmap");
        }
        std::fs::remove_file(&img).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Malformed-input hardening: errors, never panics.
// ---------------------------------------------------------------------------

#[test]
fn malformed_text_inputs_return_structured_errors() {
    let cases: &[(GraphSource, &[u8], &str)] = &[
        (GraphSource::EdgeList, b"0 1\n4294967295 2\n", "u32 range"),
        (GraphSource::EdgeList, b"0\n", "missing target"),
        (GraphSource::EdgeList, b"0 1\nx y\n", "line 2"),
        (
            GraphSource::MatrixMarket,
            b"%%MatrixMarket matrix coordinate pattern general\n0 0 1\n1 1\n",
            "out of range",
        ),
        (
            GraphSource::MatrixMarket,
            b"%%MatrixMarket matrix coordinate integer general\n2 2 5\n1 2 3\n",
            "declares 5",
        ),
        (GraphSource::Dimacs, b"p sp 2 1\na 9 1 1\n", "out of range"),
        (GraphSource::Dimacs, b"a 1 2 3\n", "before problem line"),
        (GraphSource::Graph500, b"\x01\x02\x03", "truncated"),
    ];
    for (source, bytes, want) in cases {
        let err = ingest_to_csr(*source, *bytes, &IngestOptions::default())
            .map(|_| ())
            .unwrap_err();
        assert!(
            err.to_string().contains(want),
            "{source:?}: expected `{want}` in `{err}`"
        );
    }
}

#[test]
fn non_utf8_bytes_are_io_errors_in_every_text_format() {
    let junk: &[u8] = &[0x80, 0xfe, 0xff, b'\n', b'0', b' ', b'1', b'\n'];
    for source in [GraphSource::EdgeList, GraphSource::Dimacs, GraphSource::MatrixMarket] {
        let err = ingest_to_csr(source, junk, &IngestOptions::default())
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, ParseError::Io(_) | ParseError::Format { .. }),
            "{source:?}: {err}"
        );
    }
}

#[test]
fn corrupted_image_checksum_is_refused_on_every_load_path() {
    let g = reference_w();
    let path = std::env::temp_dir().join(format!(
        "minnow-conformance-corrupt-{}.mcsr",
        std::process::id()
    ));
    minnow_graph::image::write_image(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one bit inside the col section.
    let idx = 64 + (g.nodes() + 1) * 8 + 2;
    bytes[idx] ^= 1;
    std::fs::write(&path, &bytes).unwrap();
    let modes: &[LoadMode] = if cfg!(unix) {
        &[LoadMode::Read, LoadMode::Auto, LoadMode::Mmap]
    } else {
        &[LoadMode::Read, LoadMode::Auto]
    };
    for &mode in modes {
        let err = load_image(&path, mode).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{mode:?}: {err}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn garbage_image_headers_are_refused_with_clear_messages() {
    let dir = std::env::temp_dir();
    let write = |tag: &str, bytes: &[u8]| {
        let p = dir.join(format!(
            "minnow-conformance-hdr-{}-{tag}.mcsr",
            std::process::id()
        ));
        std::fs::write(&p, bytes).unwrap();
        p
    };
    let g = reference_u();
    let mut good = Vec::new();
    write_image_to(&g, &mut good).unwrap();

    // Wrong endian marker.
    let mut bad = good.clone();
    bad[8..10].copy_from_slice(&[0x01, 0x02]);
    let p = write("endian", &bad);
    let err = load_image(&p, LoadMode::Auto).unwrap_err();
    assert!(err.to_string().contains("big-endian"), "{err}");
    std::fs::remove_file(&p).unwrap();

    // Future version.
    let mut bad = good.clone();
    bad[10..12].copy_from_slice(&7u16.to_le_bytes());
    let p = write("version", &bad);
    let err = load_image(&p, LoadMode::Auto).unwrap_err();
    assert!(err.to_string().contains("version 7"), "{err}");
    std::fs::remove_file(&p).unwrap();

    // Header claims more nodes than the file holds.
    let mut bad = good.clone();
    bad[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let p = write("overclaim", &bad);
    let err = load_image(&p, LoadMode::Auto).unwrap_err();
    assert!(
        err.to_string().contains("truncated or corrupt"),
        "{err}"
    );
    std::fs::remove_file(&p).unwrap();

    // Not an image at all.
    let p = write("noise", b"this is not an image");
    let err = load_image(&p, LoadMode::Auto).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("header") || msg.contains("magic"), "{msg}");
    std::fs::remove_file(&p).unwrap();
}

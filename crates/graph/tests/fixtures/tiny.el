# Fixture graph U (5 nodes, 6 directed edges)
# Nodes: 5 Edges: 6
% alternate comment style
3 4
0 1   # inline comment
4 0
1 3
2 3
0 2

# duplicates, self-loops, one-way edges
0 1 9
0 1 4
1 1 3
0 1 6
2 0 5
2 2 1
1 2 8

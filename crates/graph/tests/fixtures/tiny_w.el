# Fixture graph W (weighted)
2 3 2
0 1 5
3 1 9
1 2 3
2 0 7

//! Property tests for the ingestion pipeline and every external-format
//! writer/reader pair: round-trips are lossless, streamed external-sort
//! builds agree with in-memory builds, and the memory budget never changes
//! the output.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use minnow_graph::image::{load_image, write_image, LoadMode};
use minnow_graph::ingest::{ingest_to_csr, IngestOptions};
use minnow_graph::io::{self, GraphSource};
use minnow_graph::{Csr, NodeId};

/// Deterministic Fisher–Yates driven by a SplitMix64 stream, so proptest can
/// explore permutations without any global randomness.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

fn graph_from(edges: &[(u32, u32, u32)], n: usize, weighted: bool) -> Csr {
    let pairs: Vec<(NodeId, NodeId)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
    let weights: Vec<u32> = edges.iter().map(|&(_, _, w)| w).collect();
    Csr::from_edges(n, &pairs, if weighted { Some(&weights) } else { None })
}

fn raw(g: &Csr) -> (Vec<u64>, Vec<NodeId>, Vec<u32>) {
    let (r, c, w) = g.raw_parts();
    (r.to_vec(), c.to_vec(), w.to_vec())
}

fn unique_temp(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "minnow-props-{}-{}-{tag}.mcsr",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Edge list writer/reader is a lossless pair on weighted graphs.
    #[test]
    fn edge_list_roundtrip(edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 0..120)) {
        let g = graph_from(&edges, 24, true);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        // The edge-list format carries no node count, so isolated tail
        // nodes are the one thing it cannot preserve.
        prop_assert!(back.nodes() <= g.nodes());
        let (_, gc, gw) = raw(&g);
        let (_, bc, bw) = raw(&back);
        prop_assert_eq!(gc, bc);
        prop_assert_eq!(gw, bw);
    }

    /// Matrix Market round-trips both weighted (integer) and pattern graphs.
    #[test]
    fn matrix_market_roundtrip(edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 0..120),
                               weighted in any::<bool>()) {
        let g = graph_from(&edges, 24, weighted);
        let mut buf = Vec::new();
        io::write_matrix_market(&g, &mut buf).unwrap();
        let back = io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(g.nodes(), back.nodes());
        prop_assert_eq!(raw(&g), raw(&back));
        prop_assert_eq!(g.is_weighted(), back.is_weighted());
    }

    /// Graph500 binary tuples round-trip unweighted graphs.
    #[test]
    fn graph500_roundtrip(edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..2), 0..120)) {
        let g = graph_from(&edges, 24, false);
        let mut buf = Vec::new();
        io::write_graph500(&g, &mut buf).unwrap();
        let back = io::read_graph500(buf.as_slice()).unwrap();
        // The binary format carries no node count, so isolated tail nodes
        // are the one thing it cannot preserve.
        prop_assert!(back.nodes() <= g.nodes());
        let (_, gc, gw) = raw(&g);
        let (_, bc, bw) = raw(&back);
        prop_assert_eq!(gc, bc);
        prop_assert_eq!(gw, bw);
    }

    /// DIMACS round-trips arbitrary weighted graphs exactly.
    #[test]
    fn dimacs_roundtrip(edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 0..120)) {
        let g = graph_from(&edges, 24, true);
        let mut buf = Vec::new();
        io::write_dimacs(&g, &mut buf).unwrap();
        let back = io::read_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(g.nodes(), back.nodes());
        prop_assert_eq!(raw(&g), raw(&back));
    }

    /// The on-disk image round-trips through both load paths, including the
    /// sorted flag and weightedness.
    #[test]
    fn image_roundtrip(edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 0..120),
                       weighted in any::<bool>(), sort in any::<bool>()) {
        let mut g = graph_from(&edges, 24, weighted);
        if sort {
            g.sort_adjacency();
        }
        let path = unique_temp("img");
        write_image(&g, &path).unwrap();
        let modes: &[LoadMode] = if cfg!(unix) {
            &[LoadMode::Read, LoadMode::Auto, LoadMode::Mmap]
        } else {
            &[LoadMode::Read, LoadMode::Auto]
        };
        for &mode in modes {
            let back = load_image(&path, mode).unwrap();
            prop_assert_eq!(&g, &back);
            prop_assert_eq!(g.is_weighted(), back.is_weighted());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Streamed (external-sort) ingestion is independent of the input edge
    /// order and of duplicate injection, and matches the canonical in-memory
    /// build of the same edge multiset.
    #[test]
    fn stream_build_matches_in_memory_build(
        edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 1..100),
        perm_seed in any::<u64>(),
        dup_every in 1usize..6,
    ) {
        // Deduplicate (src, dst) so the canonical comparison below is
        // insensitive to sort_adjacency's tie-breaking among parallel edges.
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<(u32, u32, u32)> =
            edges.into_iter().filter(|&(a, b, _)| seen.insert((a, b))).collect();

        // Reference: in-memory build, adjacency sorted.
        let mut reference = graph_from(&edges, 24, true);
        reference.sort_adjacency();

        // Stream input: shuffled, with exact duplicates injected (removed
        // again by dedup).
        let mut noisy = edges.clone();
        for (i, e) in edges.iter().enumerate() {
            if i % dup_every == 0 {
                noisy.push(*e);
            }
        }
        shuffle(&mut noisy, perm_seed);
        let mut text = String::new();
        for (u, v, w) in &noisy {
            text.push_str(&format!("{u} {v} {w}\n"));
        }
        let opts = IngestOptions {
            dedup: true,
            nodes_hint: Some(24),
            ..IngestOptions::default()
        };
        let (streamed, report) =
            ingest_to_csr(GraphSource::EdgeList, text.as_bytes(), &opts).unwrap();
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(report.edges_kept as usize, edges.len());
    }

    /// The external-sort memory budget never changes the output: a budget
    /// small enough to force spill runs produces byte-identical CSRs.
    #[test]
    fn budget_does_not_change_output(
        edges in prop::collection::vec((0u32..24, 0u32..24, 1u32..50), 0..120),
        symmetrize in any::<bool>(),
    ) {
        let mut text = String::new();
        for (u, v, w) in &edges {
            text.push_str(&format!("{u} {v} {w}\n"));
        }
        let base = IngestOptions {
            dedup: true,
            symmetrize,
            nodes_hint: Some(24),
            ..IngestOptions::default()
        };
        let tiny = IngestOptions { budget_bytes: 1, ..base.clone() };
        let (a, ra) = ingest_to_csr(GraphSource::EdgeList, text.as_bytes(), &base).unwrap();
        let (b, rb) = ingest_to_csr(GraphSource::EdgeList, text.as_bytes(), &tiny).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra.edges_kept, rb.edges_kept);
        prop_assert_eq!(ra.nodes, rb.nodes);
    }
}

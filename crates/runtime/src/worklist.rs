//! Worklist scheduling policies.
//!
//! A [`Worklist`] is the *logical* task pool: it decides which pending task
//! a `pop` returns. The timing of concurrent access (serialization,
//! cache-line hand-offs) is layered on top by
//! [`crate::sched::SoftwareScheduler`], so the same policy objects back the
//! software baseline, the GraphMat-like BSP engine's bucketing, and the
//! Minnow engine's software *global* worklist (paper §5.2).
//!
//! Implemented policies (paper §2.1, §3.1, Fig. 3):
//!
//! * [`Fifo`] — unordered queue (Galois' default chunked worklist collapses
//!   to this logically),
//! * [`Lifo`] — stack order (Carbon's hardened policy),
//! * [`ChunkedFifo`] — FIFO with per-chunk amortized synchronization,
//! * [`Obim`] — *ordered by integer metric*: priorities discretized into
//!   buckets (`bucket = priority >> lg_bucket_interval`), buckets processed
//!   ascending, FIFO within a bucket,
//! * [`StrictPriority`] — a binary heap (Dijkstra-style strict ordering).

use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::task::Task;

/// Abstract instruction costs of one worklist operation, consumed by the
/// timing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Dynamic instructions for an enqueue.
    pub enq_instrs: u64,
    /// Dynamic instructions for a dequeue.
    pub deq_instrs: u64,
    /// Cycles the shared structure stays locked per operation.
    pub hold: u64,
}

/// A sequential worklist policy.
pub trait Worklist: std::fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Adds a task.
    fn push(&mut self, task: Task);
    /// Removes the next task according to the policy.
    fn pop(&mut self) -> Option<Task>;
    /// The exact task the next [`Worklist::pop`] would return, without
    /// removing it. Used by the speculative front to pre-execute a shard's
    /// next task before the baton arrives; `None` (the default) declines,
    /// which only reduces speculation coverage.
    fn peek(&self) -> Option<Task> {
        None
    }
    /// Number of pending tasks.
    fn len(&self) -> usize;
    /// Whether no tasks are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Instruction/lock-time cost model for the timing layer.
    fn op_cost(&self) -> OpCost;
    /// The bucket the next `pop` would come from, if the policy has the
    /// notion (used for OBIM bucket-transition accounting and by the Minnow
    /// engine's local-queue filtering).
    fn head_bucket(&self) -> Option<u64> {
        None
    }
    /// The bucket a task would land in under this policy (0 for unordered
    /// policies, which keep a single shared structure).
    fn bucket_of(&self, _task: &Task) -> u64 {
        0
    }
}

/// Unordered FIFO queue.
#[derive(Debug, Default)]
pub struct Fifo {
    q: VecDeque<Task>,
}

impl Fifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Worklist for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn push(&mut self, task: Task) {
        self.q.push_back(task);
    }
    fn pop(&mut self) -> Option<Task> {
        self.q.pop_front()
    }
    fn peek(&self) -> Option<Task> {
        self.q.front().copied()
    }
    fn len(&self) -> usize {
        self.q.len()
    }
    fn op_cost(&self) -> OpCost {
        OpCost {
            enq_instrs: 24,
            deq_instrs: 24,
            hold: 8,
        }
    }
}

/// LIFO stack (Carbon's policy, paper §3.1).
#[derive(Debug, Default)]
pub struct Lifo {
    q: Vec<Task>,
}

impl Lifo {
    /// Creates an empty LIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Worklist for Lifo {
    fn name(&self) -> &'static str {
        "lifo"
    }
    fn push(&mut self, task: Task) {
        self.q.push(task);
    }
    fn pop(&mut self) -> Option<Task> {
        self.q.pop()
    }
    fn peek(&self) -> Option<Task> {
        self.q.last().copied()
    }
    fn len(&self) -> usize {
        self.q.len()
    }
    fn op_cost(&self) -> OpCost {
        OpCost {
            enq_instrs: 20,
            deq_instrs: 20,
            hold: 8,
        }
    }
}

/// FIFO of fixed-size chunks: synchronization is amortized over a chunk
/// (Galois' `ChunkedFIFO`).
#[derive(Debug)]
pub struct ChunkedFifo {
    chunks: VecDeque<Vec<Task>>,
    chunk_size: usize,
    len: usize,
}

impl ChunkedFifo {
    /// Creates an empty chunked FIFO with the given chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunkedFifo {
            chunks: VecDeque::new(),
            chunk_size,
            len: 0,
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Worklist for ChunkedFifo {
    fn name(&self) -> &'static str {
        "chunked-fifo"
    }
    fn push(&mut self, task: Task) {
        match self.chunks.back_mut() {
            Some(back) if back.len() < self.chunk_size => back.push(task),
            _ => {
                let mut v = Vec::with_capacity(self.chunk_size);
                v.push(task);
                self.chunks.push_back(v);
            }
        }
        self.len += 1;
    }
    fn pop(&mut self) -> Option<Task> {
        loop {
            let front = self.chunks.front_mut()?;
            if let Some(t) = front.pop() {
                self.len -= 1;
                return Some(t);
            }
            self.chunks.pop_front();
        }
    }
    fn peek(&self) -> Option<Task> {
        // `pop` drains each chunk from its *back* (cheap `Vec::pop`), so
        // the next task out is the last element of the first non-empty
        // chunk.
        self.chunks
            .iter()
            .find(|c| !c.is_empty())
            .and_then(|c| c.last().copied())
    }
    fn len(&self) -> usize {
        self.len
    }
    fn op_cost(&self) -> OpCost {
        // Synchronization amortized across the chunk: cheap ops, short hold.
        OpCost {
            enq_instrs: 14,
            deq_instrs: 14,
            hold: 2,
        }
    }
}

/// Ordered-by-integer-metric worklist (paper §2.1): tasks are binned into
/// buckets by `priority >> lg_bucket_interval`; buckets drain in ascending
/// order, FIFO within a bucket.
#[derive(Debug)]
pub struct Obim {
    buckets: BTreeMap<u64, VecDeque<Task>>,
    lg_bucket_interval: u32,
    len: usize,
}

impl Obim {
    /// Creates an empty OBIM with the given bucket interval exponent.
    pub fn new(lg_bucket_interval: u32) -> Self {
        Obim {
            buckets: BTreeMap::new(),
            lg_bucket_interval,
            len: 0,
        }
    }

    /// The bucket interval exponent.
    pub fn lg_bucket_interval(&self) -> u32 {
        self.lg_bucket_interval
    }

    /// Number of currently non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

impl Worklist for Obim {
    fn name(&self) -> &'static str {
        "obim"
    }
    fn push(&mut self, task: Task) {
        let b = task.bucket(self.lg_bucket_interval);
        self.buckets.entry(b).or_default().push_back(task);
        self.len += 1;
    }
    fn pop(&mut self) -> Option<Task> {
        let (&b, q) = self.buckets.iter_mut().next()?;
        let t = q.pop_front().expect("buckets are never left empty");
        if q.is_empty() {
            self.buckets.remove(&b);
        }
        self.len -= 1;
        Some(t)
    }
    fn peek(&self) -> Option<Task> {
        self.buckets
            .values()
            .next()
            .and_then(|q| q.front().copied())
    }
    fn len(&self) -> usize {
        self.len
    }
    fn op_cost(&self) -> OpCost {
        OpCost {
            enq_instrs: 40,
            deq_instrs: 36,
            hold: 6,
        }
    }
    fn head_bucket(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }
    fn bucket_of(&self, task: &Task) -> u64 {
        task.bucket(self.lg_bucket_interval)
    }
}

/// Min-heap strict priority queue (Dijkstra ordering).
#[derive(Debug, Default)]
pub struct StrictPriority {
    heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32, u32)>>,
}

impl StrictPriority {
    /// Creates an empty strict priority queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Worklist for StrictPriority {
    fn name(&self) -> &'static str {
        "strict-priority"
    }
    fn push(&mut self, task: Task) {
        self.heap.push(std::cmp::Reverse((
            task.priority,
            task.node,
            task.edge_lo,
            task.edge_hi,
        )));
    }
    fn pop(&mut self) -> Option<Task> {
        self.heap.pop().map(|std::cmp::Reverse((p, n, lo, hi))| Task {
            priority: p,
            node: n,
            edge_lo: lo,
            edge_hi: hi,
        })
    }
    fn peek(&self) -> Option<Task> {
        self.heap
            .peek()
            .map(|&std::cmp::Reverse((p, n, lo, hi))| Task {
                priority: p,
                node: n,
                edge_lo: lo,
                edge_hi: hi,
            })
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
    fn op_cost(&self) -> OpCost {
        // Heap ops are O(log n); charge the log at typical occupancy.
        let log = (self.heap.len().max(2) as f64).log2().ceil() as u64;
        OpCost {
            enq_instrs: 24 + 6 * log,
            deq_instrs: 24 + 6 * log,
            hold: 4 + 2 * log,
        }
    }
    fn head_bucket(&self) -> Option<u64> {
        self.heap.peek().map(|std::cmp::Reverse((p, ..))| *p)
    }
    fn bucket_of(&self, task: &Task) -> u64 {
        task.priority
    }
}

/// Policy selector for sweeps (Fig. 3) and configuration plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Unordered FIFO.
    Fifo,
    /// LIFO stack.
    Lifo,
    /// Chunked FIFO with the given chunk size.
    Chunked(usize),
    /// OBIM with the given `lg_bucket_interval`.
    Obim(u32),
    /// Strict priority queue.
    Strict,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Worklist + Send> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo::new()),
            PolicyKind::Lifo => Box::new(Lifo::new()),
            PolicyKind::Chunked(k) => Box::new(ChunkedFifo::new(k)),
            PolicyKind::Obim(lg) => Box::new(Obim::new(lg)),
            PolicyKind::Strict => Box::new(StrictPriority::new()),
        }
    }

    /// Display label, e.g. `obim(3)`.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Fifo => "fifo".into(),
            PolicyKind::Lifo => "lifo".into(),
            PolicyKind::Chunked(k) => format!("chunked({k})"),
            PolicyKind::Obim(lg) => format!("obim({lg})"),
            PolicyKind::Strict => "strict".into(),
        }
    }

    /// Whether the policy respects priorities at all.
    pub fn is_ordered(self) -> bool {
        matches!(self, PolicyKind::Obim(_) | PolicyKind::Strict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(p: u64, n: u32) -> Task {
        Task::new(p, n)
    }

    #[test]
    fn fifo_preserves_order() {
        let mut w = Fifo::new();
        w.push(t(5, 0));
        w.push(t(1, 1));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap().node, 0);
        assert_eq!(w.pop().unwrap().node, 1);
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_reverses_order() {
        let mut w = Lifo::new();
        w.push(t(5, 0));
        w.push(t(1, 1));
        assert_eq!(w.pop().unwrap().node, 1);
        assert_eq!(w.pop().unwrap().node, 0);
    }

    #[test]
    fn chunked_fifo_drains_all() {
        let mut w = ChunkedFifo::new(4);
        for i in 0..10 {
            w.push(t(0, i));
        }
        assert_eq!(w.len(), 10);
        let mut seen = Vec::new();
        while let Some(task) = w.pop() {
            seen.push(task.node);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn obim_orders_by_bucket_fifo_within() {
        let mut w = Obim::new(2); // buckets of width 4
        w.push(t(9, 0)); // bucket 2
        w.push(t(1, 1)); // bucket 0
        w.push(t(2, 2)); // bucket 0, after node 1
        w.push(t(5, 3)); // bucket 1
        assert_eq!(w.head_bucket(), Some(0));
        assert_eq!(w.pop().unwrap().node, 1);
        assert_eq!(w.pop().unwrap().node, 2);
        assert_eq!(w.head_bucket(), Some(1));
        assert_eq!(w.pop().unwrap().node, 3);
        assert_eq!(w.pop().unwrap().node, 0);
        assert!(w.pop().is_none());
    }

    #[test]
    fn obim_bucket_count_tracks_nonempty() {
        let mut w = Obim::new(0);
        w.push(t(1, 0));
        w.push(t(1, 1));
        w.push(t(7, 2));
        assert_eq!(w.bucket_count(), 2);
        w.pop();
        w.pop();
        assert_eq!(w.bucket_count(), 1);
    }

    #[test]
    fn strict_priority_is_total_order() {
        let mut w = StrictPriority::new();
        for p in [7u64, 3, 9, 1, 4] {
            w.push(t(p, p as u32));
        }
        let mut out = Vec::new();
        while let Some(task) = w.pop() {
            out.push(task.priority);
        }
        assert_eq!(out, vec![1, 3, 4, 7, 9]);
    }

    #[test]
    fn strict_cost_grows_with_occupancy() {
        let mut w = StrictPriority::new();
        let small = w.op_cost();
        for i in 0..4096 {
            w.push(t(i, 0));
        }
        let big = w.op_cost();
        assert!(big.enq_instrs > small.enq_instrs);
    }

    #[test]
    fn policy_kind_builds_matching_impl() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lifo,
            PolicyKind::Chunked(8),
            PolicyKind::Obim(3),
            PolicyKind::Strict,
        ] {
            let mut w = kind.build();
            w.push(t(3, 1));
            assert_eq!(w.len(), 1);
            assert_eq!(w.pop().unwrap().node, 1);
            assert!(!kind.label().is_empty());
        }
        assert!(PolicyKind::Obim(2).is_ordered());
        assert!(!PolicyKind::Fifo.is_ordered());
    }

    #[test]
    fn peek_matches_pop_for_every_policy() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lifo,
            PolicyKind::Chunked(3),
            PolicyKind::Obim(2),
            PolicyKind::Strict,
        ] {
            let mut w = kind.build();
            assert_eq!(w.peek(), None, "{}", kind.label());
            for (i, p) in [9u64, 2, 7, 2, 5, 1, 8, 3].iter().enumerate() {
                w.push(t(*p, i as u32));
            }
            while !w.is_empty() {
                let peeked = w.peek();
                let popped = w.pop();
                assert_eq!(peeked, popped, "{}", kind.label());
            }
            assert_eq!(w.peek(), None, "{}", kind.label());
        }
    }

    #[test]
    fn chunked_rejects_zero_chunk() {
        let r = std::panic::catch_unwind(|| ChunkedFifo::new(0));
        assert!(r.is_err());
    }
}

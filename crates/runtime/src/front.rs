//! The sharded front: N front threads own disjoint groups of simulated
//! cores and take turns driving the simulation spine.
//!
//! # Why a relay, not data parallelism
//!
//! The executor's per-task spine — heap pop, scheduler dequeue, operator
//! execution, hierarchy charge, scheduler enqueues — is a strict
//! sequential dependency chain through shared black-box state (the
//! operator's algorithm state, the scheduler's shared worklist or global
//! OBIM, the directory's cross-core invalidations). Under the repo's
//! byte-identity contract the chain cannot be split into concurrently
//! executing halves without changing simulated outcomes. What *can* be
//! partitioned is **ownership**: each front thread owns a contiguous
//! block of simulated cores (with their private L1/L2 state, directory
//! interactions, and per-core worklist engines), and the spine migrates
//! to the owner of whichever core the canonical order schedules next.
//!
//! # Canonical order
//!
//! The serial oracle pops a `(simulated_clock, core_id)` min-heap, so its
//! linearization is nondecreasing in `(clock, core)` lexicographic order.
//! That key — *not* host arrival order — is the dispatcher's canonical
//! issue order: shared-fabric tickets (NoC links, whole-L3, DRAM
//! channels) are dispensed in spine order, so they are pre-assigned
//! deterministically regardless of which front thread reaches the fetch
//! first, and order-dependent statistics fold identically. The relay
//! preserves the key sequence trivially — exactly one thread holds the
//! spine at a time — and `TaskScratch::begin_task_at` debug-asserts the
//! monotonicity on every task.
//!
//! # Epoch synchronization
//!
//! The existing bound-weave epoch min-clock is the only global
//! synchronization: whichever shard holds the spine when the global
//! min-clock crosses an epoch boundary drains the weave there, so front
//! shards and weave lanes never drift more than one epoch apart. Handoffs
//! happen at core-ownership boundaries in the heap order; a shard keeps
//! the baton for as long as consecutive pops stay inside its core block.
//!
//! # Speculative shard overlap (`--speculate`)
//!
//! The relay buys cache-warm core ownership but zero concurrency: exactly
//! one shard runs at a time. Speculation overlaps shards by exploiting the
//! private/shared state split the codebase already enforces. While the
//! holder drives the spine, an idle shard pre-executes the **private
//! prefix** of its own next task in canonical `(clock, core)` order:
//! ready-heap peek ([`crate::sched::SchedulerModel::peek_dequeue`]) and
//! operator execution with every functional write journaled
//! ([`crate::op::Operator::execute_spec`]) — everything up to the first
//! shared-fabric touch or scheduler mutation. The result is parked on a
//! [`SpecBoard`] slot. When the holder's canonical order reaches that
//! shard's core, it **validates** the record (same task, same clock, and no
//! committed task has written a cache line the speculation read since its
//! snapshot epoch) and **commits** the pre-recorded trace through the
//! normal charging path — or discards it and replays from scratch. Either
//! way every simulated outcome is byte-identical to the serial oracle; the
//! only things speculation can change are host wall-clock and the
//! volatile attempt/commit/rollback counters.
//!
//! # Fault injection
//!
//! `MINNOW_FRONT_STALL_NS` (test-only, mirrors `MINNOW_SHARD_STALL_NS` on
//! the weave lanes) makes shard `s` sleep `(s + 1) x` that many
//! nanoseconds on every baton receipt, skewing the host-side schedule
//! without touching simulated time — the schedule-fuzz proptests drive it
//! to show outcomes never depend on host timing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use minnow_graph::AddressMap;
use minnow_sim::cycles::Cycle;

use crate::op::{Operator, TaskCtx};
use crate::sched::SchedulerModel;
use crate::task::Task;

/// What the spine reports after processing one canonical-order step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontStep {
    /// The spine is mid-run; the next heap top belongs to `core`.
    Yield {
        /// Simulated core the canonical order schedules next.
        core: usize,
    },
    /// The run finished (drained, or hit its task limit).
    Done,
}

/// One relayable simulation spine: processes canonical-order steps and
/// says which simulated core the next step belongs to.
///
/// `Send` because the relay moves the spine between front threads at
/// ownership boundaries.
pub trait FrontSpine: Send {
    /// Processes exactly one heap pop (a task, an idle poll, or the
    /// termination check) and peeks the next owner.
    fn step(&mut self) -> FrontStep;

    /// Simulated cores the partition covers.
    fn cores(&self) -> usize;
}

/// The front shard that owns `core`: contiguous blocks, every shard
/// non-empty for `front <= cores`.
#[inline]
#[must_use]
pub fn shard_of(core: usize, cores: usize, front: usize) -> usize {
    debug_assert!(core < cores, "core {core} out of range {cores}");
    core * front / cores
}

/// Test-only handoff stall (`MINNOW_FRONT_STALL_NS`), read per run.
fn front_stall_ns() -> u64 {
    std::env::var("MINNOW_FRONT_STALL_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Shared-read cell the speculating shards access the operator through:
/// readers pre-execute task prefixes concurrently while the spine holder
/// takes the write lock for real execution and journal commits.
pub type OpCell<'a> = RwLock<&'a mut (dyn Operator + 'a)>;

/// Exclusive cell for the scheduler: speculating shards briefly lock it to
/// peek their next dispatch; the holder locks it per spine operation.
/// Uncontended lock/unlock is nanoseconds against multi-hundred-cycle
/// simulated operations, so the serial path cost is noise.
pub type SchedCell<'a> = Mutex<&'a mut (dyn SchedulerModel + 'a)>;

/// One captured speculation: shard `shard_of(core)` pre-executed `task`
/// (peeked as core `core`'s dispatch at `clock`) into `ctx` while the
/// committed step sequence stood at `snapshot`.
#[derive(Debug)]
pub struct SpecRecord {
    /// Simulated core the speculation was peeked for.
    pub core: usize,
    /// The core's ready clock at peek time.
    pub clock: Cycle,
    /// Value of [`SpecBoard`]'s step sequence when the peek was taken; any
    /// line written by a later-committed task invalidates the record.
    pub snapshot: u64,
    /// The peeked task.
    pub task: Task,
    /// The pre-recorded trace + journaled functional writes.
    pub ctx: TaskCtx,
}

/// One shard's parking spot for a captured speculation. The peer is the
/// only arm-er and the holder the only disarm-er, so the `armed` flag never
/// ABAs: `arm` publishes with `Release` after the record is in the mutex,
/// `take_armed` claims with an `Acquire` swap before locking it.
#[derive(Debug)]
struct SpecSlot {
    armed: AtomicBool,
    rec: Mutex<Option<SpecRecord>>,
}

/// The coordination board between the spine holder and speculating shards.
///
/// Everything on it is host-side synchronization state — none of it is
/// simulated state, so it can be dropped or ignored without changing any
/// artifact.
#[derive(Debug)]
pub struct SpecBoard {
    /// Mirror of each simulated core's ready clock, published by the holder
    /// at the end of every spine step (`Release`; peers read `Acquire`).
    clocks: Vec<AtomicU64>,
    /// Count of committed spine steps. The holder stores it (`Release`)
    /// *after* releasing the operator write lock for a step, so a peer that
    /// `Acquire`-reads value `k` is guaranteed to observe all functional
    /// state written by tasks `<= k`. A stale (low) read can only cause a
    /// false rollback, never a false commit.
    step_seq: AtomicU64,
    /// Holder → peers: the run is over.
    stop: AtomicBool,
    /// Speculations armed by peers (volatile, reporting only).
    attempts: AtomicU64,
    /// Per-shard slots; slot 0 (the holder's own shard) is never used.
    slots: Vec<SpecSlot>,
    /// Per-peer-shard speculation-work wall time (reporting only).
    hold_us: Vec<AtomicU64>,
    /// Per-peer-shard idle/backoff wall time (reporting only).
    wait_us: Vec<AtomicU64>,
}

impl SpecBoard {
    /// A fresh board for `cores` simulated cores across `front` shards.
    pub fn new(cores: usize, front: usize) -> Self {
        SpecBoard {
            clocks: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            step_seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            slots: (0..front)
                .map(|_| SpecSlot {
                    armed: AtomicBool::new(false),
                    rec: Mutex::new(None),
                })
                .collect(),
            hold_us: (0..front).map(|_| AtomicU64::new(0)).collect(),
            wait_us: (0..front).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Holder: publishes core `core`'s ready clock after a spine step.
    #[inline]
    pub fn publish_clock(&self, core: usize, clock: Cycle) {
        self.clocks[core].store(clock, Ordering::Release);
    }

    /// Holder: publishes the committed step count. Must be called *after*
    /// the step's operator mutations are unlocked (see field docs).
    #[inline]
    pub fn publish_step_seq(&self, seq: u64) {
        self.step_seq.store(seq, Ordering::Release);
    }

    /// Peer: the committed step count at or before this instant.
    #[inline]
    pub fn read_step_seq(&self) -> u64 {
        self.step_seq.load(Ordering::Acquire)
    }

    /// Whether shard `shard` currently has a speculation parked.
    #[inline]
    pub fn is_armed(&self, shard: usize) -> bool {
        self.slots[shard].armed.load(Ordering::Acquire)
    }

    /// Peer: parks a captured speculation on its own slot.
    pub fn arm(&self, shard: usize, rec: SpecRecord) {
        let slot = &self.slots[shard];
        *slot.rec.lock().unwrap() = Some(rec);
        slot.armed.store(true, Ordering::Release);
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Holder: claims shard `shard`'s parked speculation, if any.
    pub fn take_armed(&self, shard: usize) -> Option<SpecRecord> {
        let slot = &self.slots[shard];
        if slot.armed.swap(false, Ordering::Acquire) {
            slot.rec.lock().unwrap().take()
        } else {
            None
        }
    }

    /// Holder: tells every speculating shard to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Peer: whether the run is over.
    #[inline]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Total speculations peers armed (volatile, reporting only).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Peer: records its wall-time split at exit (reporting only).
    fn record_peer_times(&self, shard: usize, hold_us: u64, wait_us: u64) {
        self.hold_us[shard].store(hold_us, Ordering::Relaxed);
        self.wait_us[shard].store(wait_us, Ordering::Relaxed);
    }

    /// Per-shard `(hold_us, wait_us)` pairs recorded by exited peers.
    pub fn peer_times(&self) -> Vec<(u64, u64)> {
        self.hold_us
            .iter()
            .zip(&self.wait_us)
            .map(|(h, w)| (h.load(Ordering::Relaxed), w.load(Ordering::Relaxed)))
            .collect()
    }
}

/// One speculating shard's service loop: repeatedly find the owned core
/// the canonical order will reach next (argmin of the published clock
/// mirror), peek its dequeue, pre-execute the task's private prefix with
/// writes journaled, and park the record for the holder. Runs until
/// [`SpecBoard::stop`].
///
/// Lock discipline: the scheduler and operator cells are each taken
/// briefly and never nested, and the holder's spine step also never nests
/// them — so the speculating shards cannot deadlock the spine, only
/// slightly delay individual lock acquisitions.
#[allow(clippy::too_many_arguments)]
pub fn spec_server(
    me: usize,
    cores: usize,
    front: usize,
    op: &OpCell<'_>,
    sched: &SchedCell<'_>,
    board: &SpecBoard,
    map: AddressMap,
    count_atomics_as_stores: bool,
) {
    debug_assert!(me > 0, "shard 0 holds the spine and never speculates");
    // On a host with fewer cores than front threads, every cycle this
    // peer burns is stolen from the spine holder it shares a core with:
    // throttle the duty cycle way down so speculation stays a strict
    // win (a starved peer still arms plenty of records over a full run,
    // it just never competes with the holder for the CPU or the locks).
    let starved =
        std::thread::available_parallelism().map_or(1, |n| n.get()) < front + 1;
    let (armed_nap, idle_nap) = if starved { (1000, 2000) } else { (20, 20) };
    let mut held = 0u64;
    let mut waited = 0u64;
    let mut ctx = TaskCtx::new(map, count_atomics_as_stores);
    while !board.stopped() {
        if board.is_armed(me) {
            // Our record is parked; nothing to do until the holder claims
            // it. Nap briefly instead of spinning on the shared flag.
            let nap = Instant::now();
            std::thread::sleep(std::time::Duration::from_micros(armed_nap));
            waited += nap.elapsed().as_micros() as u64;
            continue;
        }
        let t0 = Instant::now();
        // The canonical order within this shard's block: smallest
        // (clock, core) wins, exactly like the dispatcher's min-heap.
        let mut best: Option<(Cycle, usize)> = None;
        for core in 0..cores {
            if shard_of(core, cores, front) != me {
                continue;
            }
            let clock = board.clocks[core].load(Ordering::Acquire);
            if best.is_none_or(|b| (clock, core) < b) {
                best = Some((clock, core));
            }
        }
        let Some((clock, core)) = best else {
            break; // unreachable: every shard owns at least one core
        };
        // Snapshot BEFORE peeking: any commit that lands between the
        // snapshot and our reads stamps its lines above it, forcing a
        // rollback rather than a stale commit.
        let snapshot = board.read_step_seq();
        let peeked = sched.lock().unwrap().peek_dequeue(core, clock);
        let mut armed = false;
        if let Some(task) = peeked {
            ctx.reset();
            let captured = op.read().unwrap().execute_spec(task, &mut ctx);
            if captured {
                let rec = SpecRecord {
                    core,
                    clock,
                    snapshot,
                    task,
                    ctx: std::mem::replace(
                        &mut ctx,
                        TaskCtx::new(map, count_atomics_as_stores),
                    ),
                };
                board.arm(me, rec);
                armed = true;
            }
        }
        held += t0.elapsed().as_micros() as u64;
        if !armed {
            // Nothing speculable right now (empty worklist, non-spec
            // operator, or refill-dependent dequeue): back off so the
            // holder's lock acquisitions stay uncontended.
            let nap = Instant::now();
            std::thread::sleep(std::time::Duration::from_micros(idle_nap));
            waited += nap.elapsed().as_micros() as u64;
        } else if starved {
            // Rate-limit even successful speculation on a starved host:
            // the spine consumes records far faster than this shared
            // core can produce them, so producing fewer is pure profit.
            let nap = Instant::now();
            std::thread::sleep(std::time::Duration::from_micros(armed_nap));
            waited += nap.elapsed().as_micros() as u64;
        }
    }
    board.record_peer_times(me, held, waited);
}

/// The baton passed between shards: the live spine, or a quit signal
/// broadcast once some shard observes termination.
enum Baton<S> {
    Work(S),
    Quit,
}

/// Host wall-time split per front thread, measured by the relay (or by the
/// speculative drive). Volatile by construction — it never appears in a
/// deterministic artifact, only in the `minnow-bench-wallclock/v1` doc —
/// and exists so overlap wins are attributable: a shard that holds the
/// baton 90% of the wall has nothing for speculation to recover, one that
/// waits 90% does.
#[derive(Debug, Clone, Default)]
pub struct RelayTelemetry {
    /// Per-shard wall microseconds spent driving the spine (relay mode) or
    /// doing speculative work (speculation mode, peers).
    pub hold_us: Vec<u64>,
    /// Per-shard wall microseconds spent parked waiting for the baton
    /// (relay mode) or backing off between speculations (speculation mode).
    pub wait_us: Vec<u64>,
}

/// Drives `spine` to completion across `front` relay threads (the caller
/// acts as shard 0) and hands it back with per-shard hold/wait telemetry.
/// `front <= 1` runs the plain serial loop with no threads spawned. The
/// step sequence — and therefore every simulated outcome — is identical
/// for every `front`; only host-side locality and wall-clock change.
pub fn relay_run<S: FrontSpine>(mut spine: S, front: usize) -> (S, RelayTelemetry) {
    let cores = spine.cores();
    let front = front.clamp(1, cores.max(1));
    if front <= 1 {
        let t0 = Instant::now();
        while spine.step() != FrontStep::Done {}
        return (
            spine,
            RelayTelemetry {
                hold_us: vec![t0.elapsed().as_micros() as u64],
                wait_us: vec![0],
            },
        );
    }

    let stall_ns = front_stall_ns();
    let mut txs: Vec<SyncSender<Baton<S>>> = Vec::with_capacity(front);
    let mut rxs: Vec<Receiver<Baton<S>>> = Vec::with_capacity(front);
    for _ in 0..front {
        // Capacity 1 suffices: exactly one Work baton exists, and Quit is
        // only broadcast when every other shard is parked on an empty
        // channel (the finisher holds the lone baton), so sends never
        // block.
        let (tx, rx) = sync_channel(1);
        txs.push(tx);
        rxs.push(rx);
    }
    let (res_tx, res_rx) = sync_channel::<S>(1);
    let hold: Vec<AtomicU64> = (0..front).map(|_| AtomicU64::new(0)).collect();
    let wait: Vec<AtomicU64> = (0..front).map(|_| AtomicU64::new(0)).collect();

    // One shard's relay loop: park for the baton, run the spine while
    // consecutive canonical steps stay inside this shard's core block,
    // hand off at an ownership boundary, broadcast Quit at termination.
    let work = |me: usize, rx: &Receiver<Baton<S>>, txs: &[SyncSender<Baton<S>>]| {
        let mut held_us = 0u64;
        let mut waited_us = 0u64;
        'relay: loop {
            let park = Instant::now();
            let Ok(baton) = rx.recv() else {
                break 'relay;
            };
            waited_us += park.elapsed().as_micros() as u64;
            let Baton::Work(mut spine) = baton else {
                break 'relay;
            };
            if stall_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(
                    stall_ns.saturating_mul(me as u64 + 1),
                ));
            }
            let t0 = Instant::now();
            loop {
                match spine.step() {
                    FrontStep::Yield { core } => {
                        let owner = shard_of(core, cores, front);
                        if owner != me {
                            held_us += t0.elapsed().as_micros() as u64;
                            txs[owner]
                                .send(Baton::Work(spine))
                                .expect("relay peer hung up mid-run");
                            break;
                        }
                    }
                    FrontStep::Done => {
                        held_us += t0.elapsed().as_micros() as u64;
                        for (s, tx) in txs.iter().enumerate() {
                            if s != me {
                                let _ = tx.send(Baton::Quit);
                            }
                        }
                        res_tx
                            .send(spine)
                            .expect("relay caller hung up before the result");
                        break 'relay;
                    }
                }
            }
        }
        hold[me].store(held_us, Ordering::Relaxed);
        wait[me].store(waited_us, Ordering::Relaxed);
    };

    let mut rx_iter = rxs.into_iter();
    let rx0 = rx_iter.next().expect("front >= 2 shards");
    std::thread::scope(|scope| {
        for (peer, rx) in rx_iter.enumerate() {
            let work = &work;
            let txs = &txs;
            scope.spawn(move || work(peer + 1, &rx, txs));
        }
        // The initial heap top is (0, core 0): shard 0 — this thread —
        // starts with the baton.
        txs[0]
            .send(Baton::Work(spine))
            .expect("shard 0 channel is empty at start");
        work(0, &rx0, &txs);
    });

    let spine = res_rx.recv().expect("relay finished without returning the spine");
    let telemetry = RelayTelemetry {
        hold_us: hold.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        wait_us: wait.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
    };
    (spine, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spine that visits a scripted core sequence and records which
    /// host thread executed each step.
    struct ScriptSpine {
        script: Vec<usize>,
        at: usize,
        cores: usize,
        visited: Vec<(usize, std::thread::ThreadId)>,
    }

    impl FrontSpine for ScriptSpine {
        fn step(&mut self) -> FrontStep {
            let here = self.script[self.at];
            self.visited.push((here, std::thread::current().id()));
            self.at += 1;
            match self.script.get(self.at) {
                Some(&core) => FrontStep::Yield { core },
                None => FrontStep::Done,
            }
        }
        fn cores(&self) -> usize {
            self.cores
        }
    }

    fn script(cores: usize, steps: Vec<usize>) -> ScriptSpine {
        ScriptSpine {
            script: steps,
            at: 0,
            cores,
            visited: Vec::new(),
        }
    }

    #[test]
    fn contiguous_partition_covers_every_core_nonempty() {
        for cores in [1usize, 2, 3, 8, 64] {
            for front in 1..=cores {
                let mut counts = vec![0usize; front];
                for core in 0..cores {
                    let s = shard_of(core, cores, front);
                    assert!(s < front, "core {core} mapped to shard {s} of {front}");
                    counts[s] += 1;
                }
                assert!(counts.iter().all(|&c| c > 0), "{cores} cores / {front} shards");
                // Contiguity: the shard id is nondecreasing in core id.
                let ids: Vec<usize> = (0..cores).map(|c| shard_of(c, cores, front)).collect();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                assert_eq!(ids, sorted);
            }
        }
    }

    #[test]
    fn relay_preserves_the_exact_step_sequence() {
        let steps = vec![0usize, 0, 3, 1, 2, 3, 0, 2, 1, 1, 3, 0];
        for front in [1usize, 2, 3, 4] {
            let spine = script(4, steps.clone());
            let (done, telemetry) = relay_run(spine, front);
            let visited: Vec<usize> = done.visited.iter().map(|&(c, _)| c).collect();
            assert_eq!(visited, steps, "front={front} reordered the spine");
            assert_eq!(telemetry.hold_us.len(), front.min(4));
            assert_eq!(telemetry.wait_us.len(), front.min(4));
        }
    }

    #[test]
    fn each_step_runs_on_its_owning_shard() {
        // Cores 0..3 across 2 shards: {0,1} -> shard 0, {2,3} -> shard 1.
        let steps = vec![0usize, 2, 2, 1, 3, 0];
        let (done, _) = relay_run(script(4, steps), 2);
        let caller = std::thread::current().id();
        for &(core, tid) in &done.visited {
            if shard_of(core, 4, 2) == 0 {
                assert_eq!(tid, caller, "core {core} must run on the caller (shard 0)");
            } else {
                assert_ne!(tid, caller, "core {core} must run on the spawned shard");
            }
        }
    }

    #[test]
    fn front_clamps_to_core_count() {
        // More shards than cores: clamps, still completes.
        let (done, _) = relay_run(script(2, vec![0, 1, 0, 1]), 8);
        assert_eq!(done.visited.len(), 4);
    }

    #[test]
    fn stall_injection_never_changes_the_sequence() {
        let steps: Vec<usize> = (0..40).map(|i| (i * 7 + 3) % 6).collect();
        let (clean, _) = relay_run(script(6, steps.clone()), 3);
        std::env::set_var("MINNOW_FRONT_STALL_NS", "40000");
        let (stalled, _) = relay_run(script(6, steps), 3);
        std::env::remove_var("MINNOW_FRONT_STALL_NS");
        let a: Vec<usize> = clean.visited.iter().map(|&(c, _)| c).collect();
        let b: Vec<usize> = stalled.visited.iter().map(|&(c, _)| c).collect();
        assert_eq!(a, b);
    }
}

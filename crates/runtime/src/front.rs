//! The sharded front: N front threads own disjoint groups of simulated
//! cores and take turns driving the simulation spine.
//!
//! # Why a relay, not data parallelism
//!
//! The executor's per-task spine — heap pop, scheduler dequeue, operator
//! execution, hierarchy charge, scheduler enqueues — is a strict
//! sequential dependency chain through shared black-box state (the
//! operator's algorithm state, the scheduler's shared worklist or global
//! OBIM, the directory's cross-core invalidations). Under the repo's
//! byte-identity contract the chain cannot be split into concurrently
//! executing halves without changing simulated outcomes. What *can* be
//! partitioned is **ownership**: each front thread owns a contiguous
//! block of simulated cores (with their private L1/L2 state, directory
//! interactions, and per-core worklist engines), and the spine migrates
//! to the owner of whichever core the canonical order schedules next.
//!
//! # Canonical order
//!
//! The serial oracle pops a `(simulated_clock, core_id)` min-heap, so its
//! linearization is nondecreasing in `(clock, core)` lexicographic order.
//! That key — *not* host arrival order — is the dispatcher's canonical
//! issue order: shared-fabric tickets (NoC links, whole-L3, DRAM
//! channels) are dispensed in spine order, so they are pre-assigned
//! deterministically regardless of which front thread reaches the fetch
//! first, and order-dependent statistics fold identically. The relay
//! preserves the key sequence trivially — exactly one thread holds the
//! spine at a time — and `TaskScratch::begin_task_at` debug-asserts the
//! monotonicity on every task.
//!
//! # Epoch synchronization
//!
//! The existing bound-weave epoch min-clock is the only global
//! synchronization: whichever shard holds the spine when the global
//! min-clock crosses an epoch boundary drains the weave there, so front
//! shards and weave lanes never drift more than one epoch apart. Handoffs
//! happen at core-ownership boundaries in the heap order; a shard keeps
//! the baton for as long as consecutive pops stay inside its core block.
//!
//! # Fault injection
//!
//! `MINNOW_FRONT_STALL_NS` (test-only, mirrors `MINNOW_SHARD_STALL_NS` on
//! the weave lanes) makes shard `s` sleep `(s + 1) x` that many
//! nanoseconds on every baton receipt, skewing the host-side schedule
//! without touching simulated time — the schedule-fuzz proptests drive it
//! to show outcomes never depend on host timing.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// What the spine reports after processing one canonical-order step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontStep {
    /// The spine is mid-run; the next heap top belongs to `core`.
    Yield {
        /// Simulated core the canonical order schedules next.
        core: usize,
    },
    /// The run finished (drained, or hit its task limit).
    Done,
}

/// One relayable simulation spine: processes canonical-order steps and
/// says which simulated core the next step belongs to.
///
/// `Send` because the relay moves the spine between front threads at
/// ownership boundaries.
pub trait FrontSpine: Send {
    /// Processes exactly one heap pop (a task, an idle poll, or the
    /// termination check) and peeks the next owner.
    fn step(&mut self) -> FrontStep;

    /// Simulated cores the partition covers.
    fn cores(&self) -> usize;
}

/// The front shard that owns `core`: contiguous blocks, every shard
/// non-empty for `front <= cores`.
#[inline]
#[must_use]
pub fn shard_of(core: usize, cores: usize, front: usize) -> usize {
    debug_assert!(core < cores, "core {core} out of range {cores}");
    core * front / cores
}

/// Test-only handoff stall (`MINNOW_FRONT_STALL_NS`), read per run.
fn front_stall_ns() -> u64 {
    std::env::var("MINNOW_FRONT_STALL_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The baton passed between shards: the live spine, or a quit signal
/// broadcast once some shard observes termination.
enum Baton<S> {
    Work(S),
    Quit,
}

/// Drives `spine` to completion across `front` relay threads (the caller
/// acts as shard 0) and hands it back. `front <= 1` runs the plain serial
/// loop with no threads spawned. The step sequence — and therefore every
/// simulated outcome — is identical for every `front`; only host-side
/// locality and wall-clock change.
pub fn relay_run<S: FrontSpine>(mut spine: S, front: usize) -> S {
    let cores = spine.cores();
    let front = front.clamp(1, cores.max(1));
    if front <= 1 {
        while spine.step() != FrontStep::Done {}
        return spine;
    }

    let stall_ns = front_stall_ns();
    let mut txs: Vec<SyncSender<Baton<S>>> = Vec::with_capacity(front);
    let mut rxs: Vec<Receiver<Baton<S>>> = Vec::with_capacity(front);
    for _ in 0..front {
        // Capacity 1 suffices: exactly one Work baton exists, and Quit is
        // only broadcast when every other shard is parked on an empty
        // channel (the finisher holds the lone baton), so sends never
        // block.
        let (tx, rx) = sync_channel(1);
        txs.push(tx);
        rxs.push(rx);
    }
    let (res_tx, res_rx) = sync_channel::<S>(1);

    // One shard's relay loop: park for the baton, run the spine while
    // consecutive canonical steps stay inside this shard's core block,
    // hand off at an ownership boundary, broadcast Quit at termination.
    let work = |me: usize, rx: &Receiver<Baton<S>>, txs: &[SyncSender<Baton<S>>]| {
        while let Ok(baton) = rx.recv() {
            let Baton::Work(mut spine) = baton else {
                return;
            };
            if stall_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(
                    stall_ns.saturating_mul(me as u64 + 1),
                ));
            }
            loop {
                match spine.step() {
                    FrontStep::Yield { core } => {
                        let owner = shard_of(core, cores, front);
                        if owner != me {
                            txs[owner]
                                .send(Baton::Work(spine))
                                .expect("relay peer hung up mid-run");
                            break;
                        }
                    }
                    FrontStep::Done => {
                        for (s, tx) in txs.iter().enumerate() {
                            if s != me {
                                let _ = tx.send(Baton::Quit);
                            }
                        }
                        res_tx
                            .send(spine)
                            .expect("relay caller hung up before the result");
                        return;
                    }
                }
            }
        }
    };

    let mut rx_iter = rxs.into_iter();
    let rx0 = rx_iter.next().expect("front >= 2 shards");
    std::thread::scope(|scope| {
        for (peer, rx) in rx_iter.enumerate() {
            let work = &work;
            let txs = &txs;
            scope.spawn(move || work(peer + 1, &rx, txs));
        }
        // The initial heap top is (0, core 0): shard 0 — this thread —
        // starts with the baton.
        txs[0]
            .send(Baton::Work(spine))
            .expect("shard 0 channel is empty at start");
        work(0, &rx0, &txs);
    });

    res_rx.recv().expect("relay finished without returning the spine")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spine that visits a scripted core sequence and records which
    /// host thread executed each step.
    struct ScriptSpine {
        script: Vec<usize>,
        at: usize,
        cores: usize,
        visited: Vec<(usize, std::thread::ThreadId)>,
    }

    impl FrontSpine for ScriptSpine {
        fn step(&mut self) -> FrontStep {
            let here = self.script[self.at];
            self.visited.push((here, std::thread::current().id()));
            self.at += 1;
            match self.script.get(self.at) {
                Some(&core) => FrontStep::Yield { core },
                None => FrontStep::Done,
            }
        }
        fn cores(&self) -> usize {
            self.cores
        }
    }

    fn script(cores: usize, steps: Vec<usize>) -> ScriptSpine {
        ScriptSpine {
            script: steps,
            at: 0,
            cores,
            visited: Vec::new(),
        }
    }

    #[test]
    fn contiguous_partition_covers_every_core_nonempty() {
        for cores in [1usize, 2, 3, 8, 64] {
            for front in 1..=cores {
                let mut counts = vec![0usize; front];
                for core in 0..cores {
                    let s = shard_of(core, cores, front);
                    assert!(s < front, "core {core} mapped to shard {s} of {front}");
                    counts[s] += 1;
                }
                assert!(counts.iter().all(|&c| c > 0), "{cores} cores / {front} shards");
                // Contiguity: the shard id is nondecreasing in core id.
                let ids: Vec<usize> = (0..cores).map(|c| shard_of(c, cores, front)).collect();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                assert_eq!(ids, sorted);
            }
        }
    }

    #[test]
    fn relay_preserves_the_exact_step_sequence() {
        let steps = vec![0usize, 0, 3, 1, 2, 3, 0, 2, 1, 1, 3, 0];
        for front in [1usize, 2, 3, 4] {
            let spine = script(4, steps.clone());
            let done = relay_run(spine, front);
            let visited: Vec<usize> = done.visited.iter().map(|&(c, _)| c).collect();
            assert_eq!(visited, steps, "front={front} reordered the spine");
        }
    }

    #[test]
    fn each_step_runs_on_its_owning_shard() {
        // Cores 0..3 across 2 shards: {0,1} -> shard 0, {2,3} -> shard 1.
        let steps = vec![0usize, 2, 2, 1, 3, 0];
        let done = relay_run(script(4, steps), 2);
        let caller = std::thread::current().id();
        for &(core, tid) in &done.visited {
            if shard_of(core, 4, 2) == 0 {
                assert_eq!(tid, caller, "core {core} must run on the caller (shard 0)");
            } else {
                assert_ne!(tid, caller, "core {core} must run on the spawned shard");
            }
        }
    }

    #[test]
    fn front_clamps_to_core_count() {
        // More shards than cores: clamps, still completes.
        let done = relay_run(script(2, vec![0, 1, 0, 1]), 8);
        assert_eq!(done.visited.len(), 4);
    }

    #[test]
    fn stall_injection_never_changes_the_sequence() {
        let steps: Vec<usize> = (0..40).map(|i| (i * 7 + 3) % 6).collect();
        let clean = relay_run(script(6, steps.clone()), 3);
        std::env::set_var("MINNOW_FRONT_STALL_NS", "40000");
        let stalled = relay_run(script(6, steps), 3);
        std::env::remove_var("MINNOW_FRONT_STALL_NS");
        let a: Vec<usize> = clean.visited.iter().map(|&(c, _)| c).collect();
        let b: Vec<usize> = stalled.visited.iter().map(|&(c, _)| c).collect();
        assert_eq!(a, b);
    }
}

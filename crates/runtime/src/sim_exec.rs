//! The simulated parallel executor.
//!
//! Drives an [`Operator`] over N hardware threads in *virtual time*: each
//! thread has its own cycle clock, and the executor always advances the
//! thread with the smallest clock, so shared-state updates commit in a
//! globally consistent order (Galois operators are cautious/atomic, so
//! executing a whole task at its dequeue time is a legal linearization).
//!
//! Per task the executor:
//!
//! 1. pays the scheduler's dequeue cost (software worklist or Minnow engine),
//! 2. runs the operator functionally, recording its memory trace,
//! 3. charges the trace against the [`MemoryHierarchy`] (real cache/NoC/DRAM
//!    behaviour) and folds the resolved latencies through the analytic
//!    [`CoreModel`],
//! 4. pays the enqueue cost for every pushed task (after task splitting).
//!
//! The per-component cycle accounting reproduces the paper's Fig. 5
//! breakdown; the scheduler stats reproduce Fig. 11; the hierarchy stats
//! reproduce Fig. 18/20.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use fxhash::FxMap64;
use minnow_graph::Csr;
use minnow_sim::config::SimConfig;
use minnow_sim::core::{CoreMode, CoreModel};
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::{AccessKind, MemoryHierarchy};
use minnow_sim::observer::{HwPrefetcher, MemoryImage};
use minnow_sim::stats::{CycleAccounting, CycleBin};
use minnow_sim::trace::{TraceEvent, Tracer};

use crate::front::{self, FrontSpine, FrontStep, OpCell, RelayTelemetry, SchedCell, SpecBoard};
use crate::op::Operator;
use crate::sched::{SchedStats, SchedulerModel, SoftwareScheduler};
use crate::scratch::{charge_task, ChargeCounters, TaskScratch};
use crate::split::split_task_into;
use crate::worklist::PolicyKind;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads (= cores; one thread per core as in the paper).
    pub threads: usize,
    /// Machine description.
    pub sim: SimConfig,
    /// Core idealization (Fig. 4 sweeps this).
    pub core_mode: CoreMode,
    /// Task splitting threshold in edges; `None` disables splitting.
    pub split_threshold: Option<u32>,
    /// Abort the run after this many tasks (the Fig. 3 "timed out" bars).
    pub task_limit: u64,
    /// Idle poll interval when the worklist is momentarily empty.
    pub poll_interval: Cycle,
    /// Serial-baseline mode: atomics are counted as plain stores
    /// (paper §6.3.1).
    pub serial_baseline: bool,
    /// Host threads simulating this point. `1` (the default) is the serial
    /// oracle path; `>= 2` enables bound-weave mode, which moves the shared
    /// L3/NoC/DRAM fabric onto a dedicated weave thread and overlaps it with
    /// core simulation. Simulated outcomes are byte-identical either way —
    /// the determinism contract `tests/sweep_determinism.rs` enforces.
    pub point_threads: usize,
    /// Bound-weave epoch length in simulated cycles: the executor drains
    /// the weave whenever the global clock crosses an epoch boundary,
    /// bounding how far front and weave drift apart. Outcome-neutral
    /// (`tests/props.rs` pins that); only host-side overlap changes.
    pub weave_epoch: Cycle,
    /// Flow-control cap on fetches in flight on the weave before the front
    /// self-drains. Outcome-neutral, like `weave_epoch`.
    pub weave_inflight: usize,
    /// Pin the weave decision to `point_threads`: skip the adaptive serial
    /// fallback (workload too small, host too narrow) and always shard when
    /// `point_threads >= 2`. Simulated outcomes are identical either way;
    /// determinism tests and CI set this so the sharded path actually runs
    /// on small inputs and 1-core hosts.
    pub pin_point_threads: bool,
    /// Explicit front-shard count within the `point_threads` budget:
    /// `Some(f)` pins `f` front threads (clamped to the budget and the
    /// simulated core count), leaving `point_threads - f` weave lanes.
    /// `None` (the default) lets [`plan_point_split`] divide the budget.
    /// Outcome-neutral like every other host-threading knob.
    pub front_shards: Option<usize>,
    /// Speculative shard overlap (see [`crate::front`]): idle front shards
    /// pre-execute the private prefix of their next canonical task while
    /// another shard holds the spine. `Some(b)` pins the toggle; `None`
    /// defers to `MINNOW_SPECULATE` ("1"/"true"/"on" or "0"/"false"/"off")
    /// and then to the default, which is *on* whenever the point plan has
    /// two or more front shards. Outcome-neutral like every other
    /// host-threading knob: validated speculations commit byte-identical
    /// state through the normal charging path, everything else rolls back
    /// and replays.
    pub speculate: Option<bool>,
}

/// Default bound-weave epoch length (simulated cycles). Long enough that
/// epoch drains are rare next to task-end barriers, short enough to bound
/// front/weave drift; the exact value never affects simulated outcomes.
pub const DEFAULT_WEAVE_EPOCH: Cycle = 100_000;

/// Default flow-control cap on weave-inflight fetches.
pub const DEFAULT_WEAVE_INFLIGHT: usize = 4096;

/// Smallest workload (in graph edges) worth sharding. Below this the
/// per-fetch ticket/channel overhead outweighs the overlap on any host, so
/// the adaptive fallback runs the point serially. Calibrated on the smoke
/// sweep (scale 0.03, ~20k edges — falls back) vs the fig16 bench sweep
/// (scale 0.1, ~200k+ edges — shards).
pub const MIN_WEAVE_EDGES: usize = 50_000;

/// How a point's `--point-threads` host budget is divided between front
/// shards (which own core groups and relay the simulation spine, see
/// [`crate::front`]) and weave lanes (which replay shared-fabric fetches
/// under ticket scoreboards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointPlan {
    /// Front threads; `1` means the caller drives the spine alone.
    pub front: usize,
    /// Weave lane threads; `0` means the shared fabric stays inline.
    pub lanes: usize,
}

impl PointPlan {
    /// The serial oracle: one front thread, inline fabric.
    pub const SERIAL: PointPlan = PointPlan { front: 1, lanes: 0 };

    /// Host threads this plan occupies.
    #[must_use]
    pub fn host_threads(&self) -> usize {
        self.front + self.lanes
    }

    /// Whether the plan is the serial oracle path.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.front <= 1 && self.lanes == 0
    }
}

/// Divides the `point_threads` budget into a [`PointPlan`].
///
/// The split: lanes and front shards each get half the budget by default
/// (`front_override` pins the front side explicitly), with the front
/// clamped to the simulated core count — a shard must own at least one
/// core. The adaptive serial fallback declines to shard tiny workloads
/// (< [`MIN_WEAVE_EDGES`]) or starved hosts, so `--point-threads` is never
/// a wall-clock regression; `pinned` overrides it for determinism suites.
/// Every plan is outcome-neutral — the choice moves host wall-clock only.
pub fn plan_point_split(
    point_threads: usize,
    front_override: Option<usize>,
    pinned: bool,
    edges: usize,
    sim_cores: usize,
) -> PointPlan {
    if point_threads <= 1 {
        return PointPlan::SERIAL;
    }
    let total = if pinned {
        point_threads
    } else {
        if edges < MIN_WEAVE_EDGES {
            return PointPlan::SERIAL;
        }
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if host < 2 {
            return PointPlan::SERIAL;
        }
        point_threads.min(host)
    };
    if total <= 1 {
        return PointPlan::SERIAL;
    }
    let front = front_override
        .unwrap_or(total / 2)
        .clamp(1, sim_cores.max(1))
        .min(total);
    PointPlan {
        front,
        lanes: total - front,
    }
}

/// Resolves the speculation toggle: an explicit config pin wins, then
/// `MINNOW_SPECULATE`, then the default (on). The result only matters when
/// the point plan ends up with >= 2 front shards.
fn resolve_speculate(pinned: Option<bool>) -> bool {
    if let Some(b) = pinned {
        return b;
    }
    match std::env::var("MINNOW_SPECULATE").ok().as_deref() {
        Some("1") | Some("true") | Some("on") => true,
        Some("0") | Some("false") | Some("off") => false,
        _ => true,
    }
}

/// `MINNOW_SPEC_FORCE_ROLLBACK=N`: test-only injector that discards every
/// Nth consumed speculation record regardless of validity. `0` (default)
/// disables injection. Outcome-neutral: the rollback path replays.
fn spec_force_rollback() -> u64 {
    std::env::var("MINNOW_SPEC_FORCE_ROLLBACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// `MINNOW_SPEC_CHECK=1`: per-commit differential oracle on the private
/// cache spec journal (see [`SpecDrive::check`]).
fn spec_check_enabled() -> bool {
    std::env::var("MINNOW_SPEC_CHECK").ok().as_deref() == Some("1")
}

impl ExecConfig {
    /// A scaled machine with the given thread count and paper-default knobs.
    pub fn new(threads: usize) -> Self {
        ExecConfig {
            threads,
            sim: SimConfig::scaled(threads.max(1), 16),
            core_mode: CoreMode::realistic(),
            split_threshold: Some(crate::split::PAPER_SPLIT_THRESHOLD),
            task_limit: 3_000_000,
            poll_interval: 200,
            serial_baseline: false,
            point_threads: 1,
            weave_epoch: DEFAULT_WEAVE_EPOCH,
            weave_inflight: DEFAULT_WEAVE_INFLIGHT,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
        }
    }

    /// The optimized serial software baseline (1 thread, atomics removed).
    pub fn serial() -> Self {
        let mut cfg = ExecConfig::new(1);
        cfg.serial_baseline = true;
        cfg
    }
}

/// Where the cycles of a run went (Fig. 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Issue-limited useful compute.
    pub useful: u64,
    /// Worklist operations (instructions + serialization + line ping-pong).
    pub worklist: u64,
    /// Memory stalls on task data.
    pub memory: u64,
    /// Atomic/fence serialization.
    pub fence: u64,
    /// Branch misprediction penalties.
    pub branch: u64,
}

impl Breakdown {
    /// Total busy cycles across threads.
    pub fn total(&self) -> u64 {
        self.useful + self.worklist + self.memory + self.fence + self.branch
    }

    /// Fraction of busy cycles in a component.
    pub fn fraction(&self, component: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            component as f64 / t as f64
        }
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock cycles from start to last task completion.
    pub makespan: Cycle,
    /// Tasks executed.
    pub tasks: u64,
    /// Dynamic instructions (operator + scheduler code).
    pub instructions: u64,
    /// Busy-cycle breakdown.
    pub breakdown: Breakdown,
    /// The run hit [`ExecConfig::task_limit`] before draining.
    pub timed_out: bool,
    /// Scheduler-side statistics.
    pub sched: SchedStats,
    /// Demand L2 misses summed over cores.
    pub l2_misses: u64,
    /// Demand accesses summed over cores.
    pub mem_accesses: u64,
    /// Delinquent loads observed (first touches that left the L1).
    pub delinquent_loads: u64,
    /// Total loads (delinquent + ordinary).
    pub total_loads: u64,
    /// Prefetch fills into L2s (Minnow/IMP/stride runs).
    pub prefetch_fills: u64,
    /// Prefetched lines consumed before eviction.
    pub prefetch_used: u64,
    /// Bulk-synchronous supersteps (0 for asynchronous executors).
    pub supersteps: u64,
    /// Host threads that actually simulated this point: `1` when the run
    /// took the serial path (requested, adaptive fallback, tracer, or an
    /// unsupported mesh), `front + lanes` when front shards and/or the
    /// sharded weave ran. Affects wall clock only, never simulated
    /// outcomes.
    pub point_threads_used: usize,
    /// Front threads that drove the spine (the relay of
    /// [`crate::front`]): `1` on the serial path, the planned shard count
    /// otherwise. Reported as `pt_front_used` in bench documents.
    pub front_threads_used: usize,
    /// Weave lane threads that replayed shared-fabric fetches: `0` when
    /// the fabric stayed inline. Reported as `pt_lane_used` in bench
    /// documents.
    pub lane_threads_used: usize,
    /// Speculative prefixes armed by idle front shards. At least
    /// `spec_commits + spec_rollbacks` — a record armed right as the run
    /// drains is never consumed. Volatile host-side counter (depends on
    /// host timing): reported only in the wall-clock bench document,
    /// never in deterministic artifacts. `0` when speculation is off or
    /// the run took the serial path.
    pub spec_attempts: u64,
    /// Armed speculations that validated against the committed step
    /// sequence and were applied without re-execution. Volatile, like
    /// [`RunReport::spec_attempts`].
    pub spec_commits: u64,
    /// Armed speculations discarded and re-executed from scratch (stale
    /// peek, canonical-order mismatch, a cross-shard write since the
    /// snapshot, or `MINNOW_SPEC_FORCE_ROLLBACK` injection). Volatile.
    pub spec_rollbacks: u64,
    /// Host wall microseconds each front thread spent driving the spine
    /// (relay mode) or speculating (speculation mode). One entry per front
    /// thread; `[whole-drive wall]` on the serial path. Volatile.
    pub front_hold_us: Vec<u64>,
    /// Host wall microseconds each front thread spent parked waiting for
    /// the baton (relay mode) or backing off (speculation mode). Volatile.
    pub front_wait_us: Vec<u64>,
    /// Closed per-core cycle accounting: every cycle of every core up
    /// to the makespan lands in exactly one [`CycleBin`]. The
    /// [`Breakdown`] is derived from it (busy bins only); this field
    /// additionally exposes per-core detail plus the Idle and Drain
    /// bins that make the books balance.
    pub accounting: CycleAccounting,
}

impl RunReport {
    /// L2 misses per kilo-instruction (Fig. 18's metric).
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Delinquent-load density (Fig. 6's metric).
    pub fn delinquent_density(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.delinquent_loads as f64 / self.total_loads as f64
        }
    }

    /// Prefetch efficiency (Fig. 20's metric).
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetch_fills == 0 {
            1.0
        } else {
            self.prefetch_used as f64 / self.prefetch_fills as f64
        }
    }

    /// Mean cycles between consecutive worklist operations per thread
    /// (Fig. 11's metric).
    pub fn op_interval(&self, threads: usize) -> f64 {
        let ops = self.sched.enqueues + self.sched.dequeues;
        if ops == 0 {
            0.0
        } else {
            self.makespan as f64 * threads as f64 / ops as f64
        }
    }
}

/// Runs `op` to completion under `sched` on `mem`.
pub fn run(
    op: &mut dyn Operator,
    sched: &mut dyn SchedulerModel,
    mem: &mut MemoryHierarchy,
    cfg: &ExecConfig,
) -> RunReport {
    run_with_prefetcher(op, sched, mem, None, cfg)
}

/// The live simulation spine: every piece of state one canonical-order
/// step touches, packaged as one movable value so the front relay
/// ([`crate::front`]) can migrate it between front threads at core
/// ownership boundaries. [`FrontSpine::step`] reproduces exactly one
/// iteration of the classic executor loop — heap pop, epoch drain,
/// scheduler tick, dequeue (or idle poll, or termination), operator
/// execution, hierarchy charge, enqueues — so the step sequence, and with
/// it every simulated outcome, is identical for any front-shard count.
struct ExecSpine<'c, 'a> {
    /// The operator behind the shared-read cell: speculating shards take
    /// read locks to pre-execute prefixes, the spine holder takes the write
    /// lock per real execution or journal commit. Uncontended on the
    /// serial/relay paths. (`'c` is the local borrow of the cell — shorter
    /// than the caller's `'a` borrows inside it, so the cells can be
    /// consumed for their stats once the spine is done.)
    op: &'c OpCell<'a>,
    /// The scheduler behind its cell: peers briefly lock it to peek their
    /// next dispatch, the holder locks it per spine operation.
    sched: &'c SchedCell<'a>,
    mem: &'c mut MemoryHierarchy,
    hw_prefetcher: Option<(&'a mut dyn HwPrefetcher, &'a dyn MemoryImage)>,
    core_model: CoreModel,
    graph: Arc<Csr>,
    split_threshold: Option<u32>,
    tracer: Tracer,
    poll_interval: Cycle,
    task_limit: u64,
    weave: bool,
    epoch_len: Cycle,
    next_epoch: Cycle,
    accounting: CycleAccounting,
    clock: Vec<Cycle>,
    // Index min-heap over thread clocks, keyed `(clock, thread-id)`. The
    // pop sequence is nondecreasing in that key — the dispatcher's
    // canonical issue order; each thread is in the heap exactly once.
    ready: BinaryHeap<Reverse<(Cycle, usize)>>,
    scratch: TaskScratch,
    counters: ChargeCounters,
    report: RunReport,
    /// Holder-side speculation state; `None` disables speculation (the
    /// serial and relay paths).
    spec: Option<SpecDrive<'c>>,
}

/// The spine holder's half of the speculation protocol: the coordination
/// board shared with the speculating shards, plus the holder-local write
/// stamps that validation runs against.
struct SpecDrive<'a> {
    board: &'a SpecBoard,
    /// Front shards in the plan (for [`front::shard_of`]).
    front: usize,
    /// Last committed step's sequence number per *written* cache line
    /// (`addr >> 6`). A speculation whose read-set contains a line stamped
    /// after its snapshot is stale and must roll back. Holder-local — only
    /// the monotonically published `step_seq` crosses threads.
    stamps: FxMap64<u64>,
    /// Committed step count, mirrored to the board after every step.
    seq: u64,
    /// `MINNOW_SPEC_FORCE_ROLLBACK=N`: discard every Nth consumed record
    /// regardless of validity (test-only fault injection; outcome-neutral
    /// because the rollback path replays from scratch).
    force_rollback: u64,
    /// Consumed (committed + rolled back) records, for the injector.
    consumed: u64,
    /// `MINNOW_SPEC_CHECK=1`: before committing, replay the record's
    /// accesses through the private-cache spec journal and assert the
    /// rollback restores state bit-for-bit (differential oracle).
    check: bool,
}

impl ExecSpine<'_, '_> {
    /// Peeks the heap top — the next canonical step's owning core.
    fn peek(&self) -> FrontStep {
        match self.ready.peek() {
            Some(&Reverse((_, core))) => FrontStep::Yield { core },
            None => FrontStep::Done,
        }
    }
}

impl FrontSpine for ExecSpine<'_, '_> {
    fn cores(&self) -> usize {
        self.clock.len()
    }

    fn step(&mut self) -> FrontStep {
        // Advance the thread with the smallest `(clock, id)` key.
        let Some(Reverse((now, idx))) = self.ready.pop() else {
            return FrontStep::Done;
        };
        debug_assert_eq!(now, self.clock[idx]);
        // Epoch boundary: the global clock (min over threads) crossed into
        // a new epoch — barrier the weave so front and weave never drift
        // more than one epoch apart. Whichever front shard holds the spine
        // performs the drain; that is the relay's only global sync point.
        if self.weave && now >= self.next_epoch {
            self.mem.drain_weave();
            self.next_epoch = (now / self.epoch_len + 1) * self.epoch_len;
        }
        self.sched.lock().unwrap().tick(now, self.mem);

        let deq = self.sched.lock().unwrap().dequeue(idx, now, self.mem);
        self.clock[idx] += deq.cost;
        self.accounting.charge(idx, CycleBin::Worklist, deq.cost);

        let Some(task) = deq.task else {
            if self.sched.lock().unwrap().pending() == 0 {
                // No pending tasks and no thread is mid-task (tasks commit
                // atomically at dequeue time): global termination.
                return FrontStep::Done;
            }
            self.accounting.charge(idx, CycleBin::Idle, self.poll_interval);
            let (at, poll) = (self.clock[idx], self.poll_interval);
            self.tracer
                .emit(|| TraceEvent::complete("poll", "sched", idx as u32, at, poll));
            self.clock[idx] += poll;
            if let Some(spec) = self.spec.as_ref() {
                spec.board.publish_clock(idx, self.clock[idx]);
            }
            self.ready.push(Reverse((self.clock[idx], idx)));
            return self.peek();
        };
        self.tracer.emit(|| {
            TraceEvent::complete("dequeue", "sched", idx as u32, now, deq.cost)
                .with_arg("node", task.node as u64)
        });

        // ---- execute the task functionally, recording its trace ----
        // With speculation on, a peer shard may have pre-executed exactly
        // this dispatch. Validate its record against the canonical step and
        // the committed write stamps; a valid record commits the
        // pre-recorded trace (skipping re-execution), anything else is
        // discarded and the task replays from scratch below. Both paths
        // charge through the identical `charge_task` machinery, so the
        // outcome is byte-identical either way.
        let mut committed_spec = false;
        if let Some(spec) = self.spec.as_mut() {
            let shard = front::shard_of(idx, self.clock.len(), spec.front);
            if shard > 0 {
                if let Some(rec) = spec.board.take_armed(shard) {
                    spec.consumed += 1;
                    let forced =
                        spec.force_rollback > 0 && spec.consumed % spec.force_rollback == 0;
                    let valid = !forced
                        && rec.core == idx
                        && rec.clock == now
                        && rec.task == task
                        && rec.ctx.accesses().iter().all(|acc| {
                            // The record's read-set is its first-touch
                            // lines (every state read in the operators is
                            // covered by a recorded access on its line).
                            !acc.first_touch
                                || spec
                                    .stamps
                                    .get(acc.addr >> 6)
                                    .is_none_or(|&s| s <= rec.snapshot)
                        });
                    if valid {
                        if spec.check {
                            // Differential oracle: replay the record's
                            // accesses through the private-cache spec
                            // journal and prove the rollback is exact.
                            let before = self.mem.spec_private_checksum(idx);
                            self.mem.begin_spec_probe(idx);
                            for acc in rec.ctx.accesses() {
                                self.mem.spec_probe_private(idx, acc.addr, acc.kind);
                            }
                            self.mem.rollback_spec_probe(idx);
                            assert_eq!(
                                before,
                                self.mem.spec_private_checksum(idx),
                                "MINNOW_SPEC_CHECK: spec probe rollback left private caches dirty"
                            );
                        }
                        self.report.spec_commits += 1;
                        self.scratch.note_task_at(now, idx);
                        self.scratch.ctx = rec.ctx;
                        self.op.write().unwrap().apply_spec(&self.scratch.ctx);
                        committed_spec = true;
                    } else {
                        self.report.spec_rollbacks += 1;
                    }
                }
            }
        }
        if !committed_spec {
            self.scratch.begin_task_at(now, idx);
            self.op.write().unwrap().execute(task, &mut self.scratch.ctx);
        }

        // ---- charge recorded accesses against the hierarchy ----
        let t0 = self.clock[idx];
        let cycles = charge_task(
            &mut self.scratch,
            self.mem,
            &self.core_model,
            idx,
            t0,
            &mut self.hw_prefetcher,
            &mut self.counters,
        );
        self.clock[idx] += cycles.total();
        self.accounting.charge(idx, CycleBin::Useful, cycles.compute);
        self.accounting.charge(idx, CycleBin::Memory, cycles.memory);
        self.accounting.charge(idx, CycleBin::Fence, cycles.fence);
        self.accounting.charge(idx, CycleBin::Branch, cycles.branch);
        self.report.instructions += self.scratch.ctx.instrs();
        self.tracer.emit(|| {
            TraceEvent::complete("execute", "task", idx as u32, t0, cycles.total())
                .with_arg("node", task.node as u64)
                .with_arg("memory", cycles.memory)
                .with_arg("fence", cycles.fence)
                .with_arg("branch", cycles.branch)
        });

        // ---- enqueue follow-up tasks (with splitting) ----
        for p in 0..self.scratch.ctx.pushes().len() {
            let pushed = self.scratch.ctx.pushes()[p];
            self.scratch.parts.clear();
            match self.split_threshold {
                Some(th) => {
                    let degree = self.graph.out_degree(pushed.node);
                    split_task_into(pushed, degree, th, &mut self.scratch.parts);
                }
                None => self.scratch.parts.push(pushed),
            }
            for i in 0..self.scratch.parts.len() {
                let part = self.scratch.parts[i];
                let at = self.clock[idx];
                let cost = self.sched.lock().unwrap().enqueue(idx, part, at, self.mem);
                self.clock[idx] += cost;
                self.accounting.charge(idx, CycleBin::Worklist, cost);
                self.tracer.emit(|| {
                    TraceEvent::complete("enqueue", "sched", idx as u32, at, cost)
                        .with_arg("node", part.node as u64)
                });
            }
        }

        self.report.tasks += 1;
        let retired_at = self.clock[idx];
        self.tracer.emit(|| {
            TraceEvent::instant("retire", "task", idx as u32, retired_at)
                .with_arg("node", task.node as u64)
        });
        if self.report.tasks >= self.task_limit {
            self.report.timed_out = true;
            return FrontStep::Done;
        }
        self.ready.push(Reverse((self.clock[idx], idx)));
        if let Some(spec) = self.spec.as_mut() {
            // Stamp this step's written lines and publish the committed
            // step count. The sequence store happens after the operator
            // write lock above was released, so a peer that Acquire-reads
            // `seq` observes every functional write of tasks `<= seq` —
            // stale (low) reads can only cause false rollbacks.
            let seq = spec.seq + 1;
            for acc in self.scratch.ctx.accesses() {
                if acc.kind != AccessKind::Load {
                    spec.stamps.insert(acc.addr >> 6, seq);
                }
            }
            spec.seq = seq;
            spec.board.publish_step_seq(seq);
            spec.board.publish_clock(idx, self.clock[idx]);
        }
        self.peek()
    }
}

/// Like [`run`], with an optional table-based hardware prefetcher snooping
/// every demand load (the paper's Fig. 17 stride/IMP comparison).
pub fn run_with_prefetcher(
    op: &mut dyn Operator,
    sched: &mut dyn SchedulerModel,
    mem: &mut MemoryHierarchy,
    hw_prefetcher: Option<(&mut dyn HwPrefetcher, &dyn MemoryImage)>,
    cfg: &ExecConfig,
) -> RunReport {
    assert!(cfg.threads >= 1, "need at least one thread");
    assert!(
        cfg.threads <= mem.cores(),
        "more threads than simulated cores"
    );
    let core_model = CoreModel::new(
        cfg.sim.ooo,
        cfg.core_mode,
        cfg.sim.branch_mispredict_rate,
    );
    let graph = op.graph().clone();
    let map = op.address_map();
    let split_threshold = if op.supports_splitting() {
        cfg.split_threshold
    } else {
        None
    };

    sched.seed(op.initial_tasks());

    // Split the host budget into front shards + weave lanes. Traced points
    // run fully serial (`enable_weave` refuses under tracing too, but the
    // front must also decline so trace streams come from one path only).
    let mut plan = plan_point_split(
        cfg.point_threads,
        cfg.front_shards,
        cfg.pin_point_threads,
        graph.edges(),
        cfg.threads,
    );
    if mem.tracer().is_enabled() {
        plan = PointPlan::SERIAL;
    }
    let weave = plan.lanes > 0 && mem.enable_weave(cfg.weave_inflight.max(1), plan.lanes);
    if plan.lanes > 0 && !weave {
        // The fabric declined (unsupported mesh): take the full serial
        // oracle path, matching the pre-split executor's fallback.
        plan = PointPlan::SERIAL;
    }
    let speculate = plan.front >= 2 && resolve_speculate(cfg.speculate);
    let epoch_len = cfg.weave_epoch.max(1);

    let tracer = mem.tracer().clone();
    let mut ready: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        ready.push(Reverse((0, t)));
    }
    let report = RunReport {
        makespan: 0,
        tasks: 0,
        instructions: 0,
        breakdown: Breakdown::default(),
        timed_out: false,
        sched: SchedStats::default(),
        l2_misses: 0,
        mem_accesses: 0,
        delinquent_loads: 0,
        total_loads: 0,
        prefetch_fills: 0,
        prefetch_used: 0,
        supersteps: 0,
        point_threads_used: plan.host_threads(),
        front_threads_used: plan.front,
        lane_threads_used: if weave { plan.lanes } else { 0 },
        spec_attempts: 0,
        spec_commits: 0,
        spec_rollbacks: 0,
        front_hold_us: Vec::new(),
        front_wait_us: Vec::new(),
        accounting: CycleAccounting::new(0),
    };

    let threads = cfg.threads;
    let serial_baseline = cfg.serial_baseline;
    let op_cell: OpCell = RwLock::new(op);
    let sched_cell: SchedCell = Mutex::new(sched);
    let board = SpecBoard::new(threads, plan.front.max(1));

    let mut spine = ExecSpine {
        op: &op_cell,
        sched: &sched_cell,
        mem,
        // Rebuild the tuple so each reference sits at a coercion site:
        // the caller's trait-object lifetimes shrink to the spine's.
        hw_prefetcher: hw_prefetcher
            .map(|(hw, image)| (hw as &mut dyn HwPrefetcher, image as &dyn MemoryImage)),
        core_model,
        graph,
        split_threshold,
        tracer,
        poll_interval: cfg.poll_interval,
        task_limit: cfg.task_limit.max(1),
        weave,
        epoch_len,
        next_epoch: epoch_len,
        accounting: CycleAccounting::new(cfg.threads),
        clock: vec![0 as Cycle; cfg.threads],
        ready,
        scratch: TaskScratch::new(map, cfg.serial_baseline),
        counters: ChargeCounters::default(),
        report,
        spec: None,
    };

    // Drive the spine to completion. Three mutually exclusive modes, all
    // producing byte-identical simulated outcomes: serial (`front <= 1`),
    // the baton relay (`front >= 2`, speculation off), or speculative
    // overlap (`front >= 2`, speculation on) in which shard 0 — this
    // thread — drives the whole spine with no hand-offs while the peer
    // shards pre-execute private prefixes of their own upcoming tasks.
    let (spine, telemetry) = if speculate {
        spine.spec = Some(SpecDrive {
            board: &board,
            front: plan.front,
            stamps: FxMap64::new(),
            seq: 0,
            force_rollback: spec_force_rollback(),
            consumed: 0,
            check: spec_check_enabled(),
        });
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for peer in 1..plan.front {
                let (board, op, sched) = (&board, &op_cell, &sched_cell);
                scope.spawn(move || {
                    front::spec_server(
                        peer,
                        threads,
                        plan.front,
                        op,
                        sched,
                        board,
                        map,
                        serial_baseline,
                    );
                });
            }
            while spine.step() != FrontStep::Done {}
            board.stop();
        });
        let mut telemetry = RelayTelemetry {
            hold_us: vec![t0.elapsed().as_micros() as u64],
            wait_us: vec![0],
        };
        for (h, w) in board.peer_times().into_iter().skip(1) {
            telemetry.hold_us.push(h);
            telemetry.wait_us.push(w);
        }
        spine.report.spec_attempts = board.attempts();
        spine.spec = None;
        (spine, telemetry)
    } else {
        front::relay_run(spine, plan.front)
    };
    let ExecSpine {
        mem,
        mut accounting,
        clock,
        counters,
        mut report,
        ..
    } = spine;

    // End of simulation: settle every outstanding fetch and bring the
    // fabric home before any stats are read.
    mem.finish_weave();

    report.front_hold_us = telemetry.hold_us;
    report.front_wait_us = telemetry.wait_us;
    report.delinquent_loads = counters.delinquent_loads;
    report.total_loads = counters.total_loads;
    report.makespan = clock.iter().copied().max().unwrap_or(0);
    accounting.close(report.makespan);
    report.breakdown = Breakdown {
        useful: accounting.bin_total(CycleBin::Useful),
        worklist: accounting.bin_total(CycleBin::Worklist),
        memory: accounting.bin_total(CycleBin::Memory),
        fence: accounting.bin_total(CycleBin::Fence),
        branch: accounting.bin_total(CycleBin::Branch),
    };
    report.accounting = accounting;
    let total = mem.total_stats();
    report.l2_misses = total.l2_misses;
    report.mem_accesses = total.accesses;
    for core in 0..cfg.threads {
        let s = mem.l2_cache(core).stats();
        report.prefetch_fills += s.prefetch_fills.get();
        report.prefetch_used += s.prefetch_used.get();
    }
    // Last: reclaiming the scheduler consumes its cell, so every borrow of
    // the spine's lifetime (including `mem` above) must be done first.
    report.sched = sched_cell.into_inner().unwrap().stats();
    report.instructions += report.sched.instrs;
    report
}

/// Convenience wrapper: runs `op` under the software scheduler with the
/// given policy on a fresh hierarchy.
pub fn run_software(op: &mut dyn Operator, policy: PolicyKind, cfg: &ExecConfig) -> RunReport {
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = SoftwareScheduler::new(policy.build(), cfg.threads);
    run(op, &mut sched, &mut mem, cfg)
}

/// Runs the optimized serial baseline (1 thread, atomics demoted) and
/// returns its makespan — the denominator of the paper's Fig. 15 speedups.
pub fn serial_baseline_cycles(op: &mut dyn Operator, policy: PolicyKind) -> Cycle {
    let cfg = ExecConfig::serial();
    run_software(op, policy, &cfg).makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{PrefetchKind, TaskCtx};
    use crate::task::Task;
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_graph::Csr;
    use std::sync::Arc;

    /// A toy BFS-like operator used to exercise the executor.
    #[derive(Debug)]
    struct ToyBfs {
        graph: Arc<Csr>,
        dist: Vec<u64>,
        src: u32,
    }

    impl ToyBfs {
        fn new(graph: Arc<Csr>, src: u32) -> Self {
            let n = graph.nodes();
            ToyBfs {
                graph,
                dist: vec![u64::MAX; n],
                src,
            }
        }
    }

    impl Operator for ToyBfs {
        fn name(&self) -> &'static str {
            "toy-bfs"
        }
        fn graph(&self) -> &Arc<Csr> {
            &self.graph
        }
        fn initial_tasks(&self) -> Vec<Task> {
            vec![Task::new(0, self.src)]
        }
        fn default_policy(&self) -> PolicyKind {
            PolicyKind::Obim(0)
        }
        fn prefetch_kind(&self) -> PrefetchKind {
            PrefetchKind::Standard
        }
        fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
            let v = task.node;
            ctx.load_node(v);
            ctx.add_instrs(10);
            if self.dist[v as usize] > task.priority {
                self.dist[v as usize] = task.priority;
                ctx.store_node(v);
            } else if self.dist[v as usize] < task.priority {
                return; // stale task: a better distance already propagated
            }
            let d = self.dist[v as usize];
            let range = task.resolve_range(self.graph.out_degree(v));
            let graph = self.graph.clone();
            let base = graph.edge_range(v).start;
            for slot in range {
                let e = base + slot;
                let n = graph.edge_dst(e);
                ctx.load_edge(e, n);
                ctx.load_node(n);
                ctx.add_branches(1);
                ctx.add_instrs(8);
                if self.dist[n as usize] > d + 1 {
                    self.dist[n as usize] = d + 1;
                    ctx.atomic_node(n);
                    ctx.push(Task::new(d + 1, n));
                }
            }
        }
        fn check(&self) -> Result<(), String> {
            // On a connected graph every node must be reached.
            if self.dist.contains(&u64::MAX) {
                return Err("unreached nodes".into());
            }
            Ok(())
        }
    }

    fn toy_graph() -> Arc<Csr> {
        Arc::new(grid::generate(&GridConfig::new(12, 12), 7))
    }

    #[test]
    fn executor_drains_and_computes_bfs() {
        let g = toy_graph();
        let mut op = ToyBfs::new(g.clone(), 0);
        let cfg = ExecConfig::new(4);
        let report = run_software(&mut op, PolicyKind::Obim(0), &cfg);
        assert!(!report.timed_out);
        assert!(report.tasks as usize >= g.nodes());
        op.check().unwrap();
        // Distances match true BFS levels.
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&g, 0);
        for (v, &l) in levels.iter().enumerate() {
            assert_eq!(op.dist[v], l as u64, "node {v}");
        }
        assert!(report.makespan > 0);
        assert!(report.breakdown.total() > 0);
        assert!(report.instructions > 0);
    }

    #[test]
    fn more_threads_reduce_makespan() {
        let g = toy_graph();
        let mut op1 = ToyBfs::new(g.clone(), 0);
        let r1 = run_software(&mut op1, PolicyKind::Obim(0), &ExecConfig::new(1));
        let mut op4 = ToyBfs::new(g, 0);
        let r4 = run_software(&mut op4, PolicyKind::Obim(0), &ExecConfig::new(4));
        assert!(
            r4.makespan < r1.makespan,
            "4 threads {} must beat 1 thread {}",
            r4.makespan,
            r1.makespan
        );
    }

    #[test]
    fn priority_policy_does_less_work_than_lifo() {
        let g = toy_graph();
        let mut op_pri = ToyBfs::new(g.clone(), 0);
        let r_pri = run_software(&mut op_pri, PolicyKind::Obim(0), &ExecConfig::new(2));
        let mut op_lifo = ToyBfs::new(g, 0);
        let r_lifo = run_software(&mut op_lifo, PolicyKind::Lifo, &ExecConfig::new(2));
        assert!(
            r_lifo.tasks >= r_pri.tasks,
            "LIFO work {} must be >= ordered work {}",
            r_lifo.tasks,
            r_pri.tasks
        );
    }

    #[test]
    fn task_limit_reports_timeout() {
        let g = toy_graph();
        let mut op = ToyBfs::new(g, 0);
        let mut cfg = ExecConfig::new(2);
        cfg.task_limit = 10;
        let report = run_software(&mut op, PolicyKind::Fifo, &cfg);
        assert!(report.timed_out);
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let g = toy_graph();
        let mut op = ToyBfs::new(g, 0);
        let report = run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(2));
        assert!(report.mpki() > 0.0, "cold caches must miss");
        let d = report.delinquent_density();
        assert!(d > 0.0 && d < 0.5, "density {d}");
        assert!(report.op_interval(2) > 0.0);
        assert_eq!(report.prefetch_fills, 0);
        assert_eq!(report.prefetch_efficiency(), 1.0);
    }

    #[test]
    fn serial_baseline_runs() {
        let g = toy_graph();
        let mut op = ToyBfs::new(g, 0);
        let cycles = serial_baseline_cycles(&mut op, PolicyKind::Obim(0));
        assert!(cycles > 0);
    }
}


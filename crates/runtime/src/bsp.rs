//! GraphMat-like bulk-synchronous engine (the paper's §3.1 baseline).
//!
//! GraphMat "processes all active nodes in parallel, generates the next set
//! of active nodes, and repeats until convergence" — an unordered BSP model
//! built on sparse-matrix sweeps. Its per-task overhead is *lower* than a
//! dynamic worklist (no queue operations, sequential frontier sweeps), which
//! is why it wins on unordered workloads (G500, PR in Fig. 2), but it cannot
//! exploit priority ordering, which is why Galois+OBIM beats it by 100x+ on
//! SSSP.
//!
//! The bucketed mode reproduces `GMat*` (the Delta-Stepping kernel the
//! GraphMat authors wrote for the paper): one full kernel execution per
//! priority bucket, paying the full sweep overhead every superstep — hence
//! its much larger optimal bucket interval and modest ~2x gain.

use std::collections::{BTreeMap, HashMap};

use minnow_sim::config::SimConfig;
use minnow_sim::core::{CoreMode, CoreModel};
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::MemoryHierarchy;
use minnow_sim::stats::{CycleAccounting, CycleBin};
use minnow_sim::trace::{TraceEvent, Tracer};

use crate::op::Operator;
use crate::scratch::{charge_task, ChargeCounters, TaskScratch};
use crate::sim_exec::{Breakdown, RunReport};
use crate::task::Task;

/// BSP engine configuration.
#[derive(Debug, Clone)]
pub struct BspConfig {
    /// Worker threads.
    pub threads: usize,
    /// Machine description.
    pub sim: SimConfig,
    /// Core idealization.
    pub core_mode: CoreMode,
    /// `None` = unordered GraphMat; `Some(lg)` = bucketed `GMat*` with one
    /// kernel per priority bucket of width `2^lg`.
    pub lg_bucket_interval: Option<u32>,
    /// Abort after this many supersteps (timeout guard).
    pub superstep_limit: u64,
    /// Count atomics as stores (serial baseline comparisons).
    pub serial_baseline: bool,
    /// Structured event sink (disabled by default; the BSP engine owns
    /// its hierarchy, so the tracer is injected through the config).
    pub tracer: Tracer,
    /// Host threads simulating this point; `>= 2` enables bound-weave mode
    /// (see [`crate::sim_exec::ExecConfig::point_threads`]). Supersteps are
    /// the BSP engine's natural epochs: the weave is drained at every
    /// barrier. Outcomes are byte-identical either way.
    pub point_threads: usize,
    /// Flow-control cap on weave-inflight fetches (outcome-neutral).
    pub weave_inflight: usize,
    /// Skip the adaptive serial fallback and always shard when
    /// `point_threads >= 2` (see
    /// [`crate::sim_exec::ExecConfig::pin_point_threads`]).
    pub pin_point_threads: bool,
}

impl BspConfig {
    /// Unordered GraphMat on a scaled machine.
    pub fn new(threads: usize) -> Self {
        BspConfig {
            threads,
            sim: SimConfig::scaled(threads.max(1), 16),
            core_mode: CoreMode::realistic(),
            lg_bucket_interval: None,
            superstep_limit: 200_000,
            serial_baseline: false,
            tracer: Tracer::disabled(),
            point_threads: 1,
            weave_inflight: crate::sim_exec::DEFAULT_WEAVE_INFLIGHT,
            pin_point_threads: false,
        }
    }

    /// Bucketed `GMat*` mode.
    pub fn bucketed(threads: usize, lg_bucket_interval: u32) -> Self {
        let mut cfg = BspConfig::new(threads);
        cfg.lg_bucket_interval = Some(lg_bucket_interval);
        cfg
    }
}

/// Per-superstep fixed overhead: kernel launch + barrier.
fn barrier_cost(threads: usize) -> Cycle {
    800 + 12 * threads as Cycle
}

/// Per-superstep frontier sweep: GraphMat scans the active-vertex bitmap.
fn sweep_cost(nodes: usize, threads: usize) -> Cycle {
    // ~3 instructions per 64-node bitmap word at IPC 4, divided over threads.
    ((nodes as u64 / 64 + 1) * 3 / 4 / threads as u64).max(1)
}

/// Runs `op` under the BSP engine.
pub fn run_bsp(op: &mut dyn Operator, cfg: &BspConfig) -> RunReport {
    assert!(cfg.threads >= 1, "need at least one thread");
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    mem.set_tracer(cfg.tracer.clone());
    // The BSP engine never front-shards (see `front_threads_used` below),
    // so the whole `point_threads` budget goes to weave lanes: pin the
    // front side of the split to 1 and take the lane count.
    let lanes = crate::sim_exec::plan_point_split(
        cfg.point_threads,
        Some(1),
        cfg.pin_point_threads,
        op.graph().edges(),
        1,
    )
    .lanes;
    let mut weave = false;
    if lanes > 0 {
        // Bound-weave mode (refused under tracing — traced points stay on
        // the serial oracle path). Supersteps are the epochs here: every
        // barrier below drains the weave.
        weave = mem.enable_weave(cfg.weave_inflight.max(1), lanes);
    }
    let tracer = cfg.tracer.clone();
    let mut accounting = CycleAccounting::new(cfg.threads);
    let core_model = CoreModel::new(cfg.sim.ooo, cfg.core_mode, cfg.sim.branch_mispredict_rate);
    let map = op.address_map();
    let nodes = op.graph().nodes();

    // Buckets of pending frontiers; unordered mode uses a single bucket 0.
    let mut buckets: BTreeMap<u64, Vec<Task>> = BTreeMap::new();
    let bucket_of = |t: &Task| match cfg.lg_bucket_interval {
        Some(lg) => t.priority >> lg,
        None => 0,
    };
    for t in op.initial_tasks() {
        buckets.entry(bucket_of(&t)).or_default().push(t);
    }

    let mut report = RunReport {
        makespan: 0,
        tasks: 0,
        instructions: 0,
        breakdown: Breakdown::default(),
        timed_out: false,
        sched: Default::default(),
        l2_misses: 0,
        mem_accesses: 0,
        delinquent_loads: 0,
        total_loads: 0,
        prefetch_fills: 0,
        prefetch_used: 0,
        supersteps: 0,
        point_threads_used: if weave { lanes + 1 } else { 1 },
        // The BSP engine's charge order is round-robin within a
        // superstep, not the canonical `(clock, core)` order, so it
        // never front-shards: the full `point_threads` budget goes to
        // weave lanes via the pinned-front point split above.
        front_threads_used: 1,
        lane_threads_used: if weave { lanes } else { 0 },
        spec_attempts: 0,
        spec_commits: 0,
        spec_rollbacks: 0,
        front_hold_us: Vec::new(),
        front_wait_us: Vec::new(),
        accounting: CycleAccounting::new(0),
    };
    let mut now: Cycle = 0;
    let mut scratch = TaskScratch::new(map, cfg.serial_baseline);
    let mut counters = ChargeCounters::default();

    while let Some((&bucket, _)) = buckets.iter().next() {
        // One full kernel execution drains this bucket to convergence.
        let mut frontier = buckets.remove(&bucket).unwrap_or_default();
        while !frontier.is_empty() {
            if report.supersteps >= cfg.superstep_limit {
                report.timed_out = true;
                report.makespan = now;
                report.delinquent_loads = counters.delinquent_loads;
                report.total_loads = counters.total_loads;
                return finish(report, &mut mem, cfg.threads, accounting);
            }
            report.supersteps += 1;
            let superstep_start = now;
            let frontier_size = frontier.len() as u64;

            // GraphMat processes each active node once per superstep.
            frontier.sort_unstable_by_key(|t| t.node);
            frontier.dedup_by_key(|t| t.node);

            let mut clocks = vec![now; cfg.threads];
            let mut next: HashMap<u32, Task> = HashMap::new();
            for (i, task) in frontier.iter().enumerate() {
                let thread = i % cfg.threads;
                scratch.begin_task();
                op.execute(*task, &mut scratch.ctx);
                // GraphMat's vertex-program overhead per active node.
                scratch.ctx.add_instrs(8);

                let t0 = clocks[thread];
                let cycles = charge_task(
                    &mut scratch,
                    &mut mem,
                    &core_model,
                    thread,
                    t0,
                    &mut None,
                    &mut counters,
                );
                clocks[thread] += cycles.total();
                accounting.charge(thread, CycleBin::Useful, cycles.compute);
                accounting.charge(thread, CycleBin::Memory, cycles.memory);
                accounting.charge(thread, CycleBin::Fence, cycles.fence);
                accounting.charge(thread, CycleBin::Branch, cycles.branch);
                report.instructions += scratch.ctx.instrs();
                report.tasks += 1;
                tracer.emit(|| {
                    TraceEvent::complete("execute", "task", thread as u32, t0, cycles.total())
                        .with_arg("node", task.node as u64)
                        .with_arg("memory", cycles.memory)
                        .with_arg("fence", cycles.fence)
                        .with_arg("branch", cycles.branch)
                });

                for p in 0..scratch.ctx.pushes().len() {
                    let pushed = scratch.ctx.pushes()[p];
                    let b = bucket_of(&pushed);
                    if b <= bucket {
                        // Same (or more urgent, clamped) bucket: next sweep
                        // of this kernel.
                        next.entry(pushed.node)
                            .and_modify(|t| t.priority = t.priority.min(pushed.priority))
                            .or_insert(pushed);
                    } else {
                        buckets.entry(b).or_default().push(pushed);
                    }
                }
            }

            // Superstep barrier = weave epoch boundary.
            mem.drain_weave();
            let busiest = clocks.iter().copied().max().unwrap_or(now);
            // Threads that finished their share early wait at the
            // barrier: superstep load imbalance is idle time.
            for (t, &c) in clocks.iter().enumerate() {
                accounting.charge(t, CycleBin::Idle, busiest - c);
            }
            let sweep = sweep_cost(nodes, cfg.threads) + barrier_cost(cfg.threads);
            for t in 0..cfg.threads {
                accounting.charge(t, CycleBin::Worklist, sweep);
            }
            now = busiest + sweep;
            frontier = next.into_values().collect();
            tracer.emit(|| {
                TraceEvent::complete("superstep", "bsp", 0, superstep_start, now - superstep_start)
                    .with_arg("frontier", frontier_size)
                    .with_arg("bucket", bucket)
            });
        }
    }

    report.makespan = now;
    report.delinquent_loads = counters.delinquent_loads;
    report.total_loads = counters.total_loads;
    finish(report, &mut mem, cfg.threads, accounting)
}

fn finish(
    mut report: RunReport,
    mem: &mut MemoryHierarchy,
    threads: usize,
    mut accounting: CycleAccounting,
) -> RunReport {
    mem.finish_weave();
    accounting.close(report.makespan);
    report.breakdown = Breakdown {
        useful: accounting.bin_total(CycleBin::Useful),
        worklist: accounting.bin_total(CycleBin::Worklist),
        memory: accounting.bin_total(CycleBin::Memory),
        fence: accounting.bin_total(CycleBin::Fence),
        branch: accounting.bin_total(CycleBin::Branch),
    };
    report.accounting = accounting;
    let total = mem.total_stats();
    report.l2_misses = total.l2_misses;
    report.mem_accesses = total.accesses;
    for core in 0..threads {
        let s = mem.l2_cache(core).stats();
        report.prefetch_fills += s.prefetch_fills.get();
        report.prefetch_used += s.prefetch_used.get();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{PrefetchKind, TaskCtx};
    use crate::worklist::PolicyKind;
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_graph::Csr;
    use std::sync::Arc;

    /// Same toy BFS as the executor tests.
    #[derive(Debug)]
    struct ToyBfs {
        graph: Arc<Csr>,
        dist: Vec<u64>,
    }

    impl Operator for ToyBfs {
        fn name(&self) -> &'static str {
            "toy-bfs"
        }
        fn graph(&self) -> &Arc<Csr> {
            &self.graph
        }
        fn initial_tasks(&self) -> Vec<Task> {
            vec![Task::new(0, 0)]
        }
        fn default_policy(&self) -> PolicyKind {
            PolicyKind::Obim(0)
        }
        fn prefetch_kind(&self) -> PrefetchKind {
            PrefetchKind::Standard
        }
        fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
            let v = task.node;
            ctx.load_node(v);
            ctx.add_instrs(10);
            if self.dist[v as usize] > task.priority {
                self.dist[v as usize] = task.priority;
                ctx.store_node(v);
            }
            let d = self.dist[v as usize];
            for (e, n, _) in self.graph.clone().edges_of(v) {
                ctx.load_edge(e, n);
                ctx.load_node(n);
                ctx.add_branches(1);
                ctx.add_instrs(8);
                if self.dist[n as usize] > d + 1 {
                    self.dist[n as usize] = d + 1;
                    ctx.atomic_node(n);
                    ctx.push(Task::new(d + 1, n));
                }
            }
        }
    }

    fn toy(graph: Arc<Csr>) -> ToyBfs {
        let n = graph.nodes();
        let mut t = ToyBfs {
            graph,
            dist: vec![u64::MAX; n],
        };
        t.dist[0] = 0;
        t
    }

    #[test]
    fn bsp_computes_correct_bfs() {
        let g = Arc::new(grid::generate(&GridConfig::new(10, 10), 3));
        let mut op = toy(g.clone());
        let report = run_bsp(&mut op, &BspConfig::new(4));
        assert!(!report.timed_out);
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&g, 0);
        for (v, &l) in levels.iter().enumerate() {
            assert_eq!(op.dist[v], l as u64, "node {v}");
        }
        // BFS on a 10x10 grid needs diameter+1 supersteps.
        assert!(report.supersteps >= 18, "supersteps {}", report.supersteps);
    }

    #[test]
    fn superstep_limit_times_out() {
        let g = Arc::new(grid::generate(&GridConfig::new(20, 20), 3));
        let mut op = toy(g);
        let mut cfg = BspConfig::new(2);
        cfg.superstep_limit = 3;
        let report = run_bsp(&mut op, &cfg);
        assert!(report.timed_out);
    }

    #[test]
    fn bucketed_mode_runs_kernel_per_bucket() {
        let g = Arc::new(grid::generate(&GridConfig::new(10, 10), 3));
        let mut op = toy(g.clone());
        let unordered = run_bsp(&mut op, &BspConfig::new(2));
        let mut op2 = toy(g);
        let bucketed = run_bsp(&mut op2, &BspConfig::bucketed(2, 2));
        // Bucketed BFS executes at least as many supersteps (one kernel per
        // hop-distance bucket) but fewer wasted task executions.
        assert!(bucketed.supersteps >= unordered.supersteps / 2);
        assert!(bucketed.tasks <= unordered.tasks);
    }

    #[test]
    fn more_threads_speed_up_bsp() {
        let g = Arc::new(grid::generate(&GridConfig::new(16, 16), 3));
        let mut a = toy(g.clone());
        let r1 = run_bsp(&mut a, &BspConfig::new(1));
        let mut b = toy(g);
        let r4 = run_bsp(&mut b, &BspConfig::new(4));
        assert!(r4.makespan < r1.makespan);
    }
}

//! Scheduler timing models.
//!
//! [`SchedulerModel`] is the executor's view of "where tasks come from and
//! what an operation costs". Two families implement it:
//!
//! * [`SoftwareScheduler`] (here) — the Galois software baseline: every
//!   enqueue/dequeue runs on the worker core, pays the policy's instruction
//!   cost, serializes on shared structures ([`SharedResource`]) and touches
//!   worklist cache lines through the real hierarchy. At high thread counts
//!   the serialization and line ping-pong dominate (paper Fig. 5, 11).
//! * `MinnowScheduler` (in `minnow-core`) — worklist offload: the worker
//!   pays only a short accelerator call; spills/refills happen on the Minnow
//!   engine's own timeline.

use minnow_graph::layout;
use minnow_sim::contend::SharedResource;
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::{AccessKind, MemoryHierarchy};

use crate::task::Task;
use crate::worklist::Worklist;

/// Result of a dequeue request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeueOutcome {
    /// The task, if one was available.
    pub task: Option<Task>,
    /// Cycles the worker spent on the operation (including waiting).
    pub cost: Cycle,
}

/// Aggregate scheduler-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Enqueue operations performed.
    pub enqueues: u64,
    /// Dequeue operations that returned a task.
    pub dequeues: u64,
    /// Dequeue attempts that found nothing.
    pub empty_dequeues: u64,
    /// Total cycles workers spent in scheduler operations.
    pub op_cycles: u64,
    /// Portion of `op_cycles` spent waiting on serialization.
    pub wait_cycles: u64,
    /// Dynamic instructions executed by scheduler code on workers.
    pub instrs: u64,
}

impl SchedStats {
    /// Mean worker-side cost of one operation.
    pub fn mean_op_cost(&self) -> f64 {
        let ops = self.enqueues + self.dequeues + self.empty_dequeues;
        if ops == 0 {
            0.0
        } else {
            self.op_cycles as f64 / ops as f64
        }
    }
}

/// Where tasks come from and what each operation costs the worker.
///
/// `Send` is a supertrait so the front-sharded executor can relay the
/// scheduler between front threads along with the rest of the simulation
/// spine (see `minnow_runtime::front`).
pub trait SchedulerModel: Send {
    /// Human-readable configuration label.
    fn label(&self) -> String;

    /// Cost-free insertion of the initial tasks (worklist initialization is
    /// outside every measured region in the paper).
    fn seed(&mut self, tasks: Vec<Task>);

    /// Enqueues `task` from `thread` at virtual time `now`; returns the
    /// cycles charged to the worker.
    fn enqueue(
        &mut self,
        thread: usize,
        task: Task,
        now: Cycle,
        mem: &mut MemoryHierarchy,
    ) -> Cycle;

    /// Attempts to dequeue for `thread` at `now`.
    fn dequeue(&mut self, thread: usize, now: Cycle, mem: &mut MemoryHierarchy)
        -> DequeueOutcome;

    /// The exact task the next [`SchedulerModel::dequeue`] for `thread` at
    /// `now` would return, without removing it, charging cycles, or touching
    /// the hierarchy. The speculative front uses this to pre-execute a
    /// shard's next task; `None` (the default) declines speculation, which
    /// is always safe.
    fn peek_dequeue(&self, _thread: usize, _now: Cycle) -> Option<Task> {
        None
    }

    /// Total tasks pending anywhere in the scheduler.
    fn pending(&self) -> usize;

    /// Scheduler-side statistics.
    fn stats(&self) -> SchedStats;

    /// Lets time-driven schedulers (the Minnow engine) advance background
    /// work up to `now`. Software schedulers do everything synchronously.
    fn tick(&mut self, _now: Cycle, _mem: &mut MemoryHierarchy) {}
}

/// Worklist-code IPC: scheduler code is pointer-chasing with compares; it
/// does not sustain the core's peak issue width.
const SCHED_IPC: u64 = 2;

/// The Galois-like software scheduler: policy + contention + cache traffic.
///
/// Threads are grouped into *sockets* of 8 (the paper's §6.2.1 topology
/// override treats the 64-core machine as 8 sockets x 8 cores); operations
/// serialize within a socket, and OBIM bucket-map changes additionally
/// serialize globally.
#[derive(Debug)]
pub struct SoftwareScheduler {
    worklist: Box<dyn Worklist + Send>,
    sockets: Vec<SharedResource>,
    threads_per_socket: usize,
    global: SharedResource,
    last_head_bucket: Option<u64>,
    stats: SchedStats,
}

impl SoftwareScheduler {
    /// Wraps a policy for `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(worklist: Box<dyn Worklist + Send>, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let threads_per_socket = 8;
        let sockets = threads.div_ceil(threads_per_socket);
        SoftwareScheduler {
            worklist,
            sockets: (0..sockets).map(|_| SharedResource::new(40)).collect(),
            threads_per_socket,
            global: SharedResource::new(60),
            last_head_bucket: None,
            stats: SchedStats::default(),
        }
    }

    /// The wrapped policy (for inspection in tests).
    pub fn worklist(&self) -> &dyn Worklist {
        self.worklist.as_ref()
    }

    fn socket_of(&self, thread: usize) -> usize {
        (thread / self.threads_per_socket).min(self.sockets.len() - 1)
    }

    /// Address of the cache line that an operation on `bucket` touches.
    fn bucket_line(bucket: u64) -> u64 {
        layout::WORKLIST_BASE + bucket * 64
    }
}

impl SchedulerModel for SoftwareScheduler {
    fn label(&self) -> String {
        format!("software({})", self.worklist.name())
    }

    fn seed(&mut self, tasks: Vec<Task>) {
        for t in tasks {
            self.worklist.push(t);
        }
        self.last_head_bucket = self.worklist.head_bucket();
    }

    fn enqueue(
        &mut self,
        thread: usize,
        task: Task,
        now: Cycle,
        mem: &mut MemoryHierarchy,
    ) -> Cycle {
        let cost_model = self.worklist.op_cost();
        let mut cycles = cost_model.enq_instrs / SCHED_IPC;
        self.stats.instrs += cost_model.enq_instrs;

        // Serialize on the socket's structure.
        let socket = self.socket_of(thread);
        let acq = self.sockets[socket].acquire(thread, now, cost_model.hold);
        cycles += acq.waited + cost_model.hold;
        self.stats.wait_cycles += acq.waited;

        // Touch the destination bucket's cache line (write: tail update).
        let bucket = self.worklist.bucket_of(&task);
        let line = Self::bucket_line(bucket.min(1 << 20));
        let access = mem.access(thread, line, AccessKind::Store, acq.start);
        cycles += access.latency;

        self.worklist.push(task);

        // OBIM bucket-map transition: creating a new head bucket serializes
        // globally (paper §3.1: "OBIM assumes changing buckets is rare").
        let head = self.worklist.head_bucket();
        if head.is_some() && head != self.last_head_bucket {
            let g = self.global.acquire(thread, now + cycles, 30);
            cycles += g.waited + 30;
            self.stats.wait_cycles += g.waited;
            self.last_head_bucket = head;
        }

        self.stats.enqueues += 1;
        self.stats.op_cycles += cycles;
        cycles
    }

    fn dequeue(
        &mut self,
        thread: usize,
        now: Cycle,
        mem: &mut MemoryHierarchy,
    ) -> DequeueOutcome {
        let cost_model = self.worklist.op_cost();
        let mut cycles = cost_model.deq_instrs / SCHED_IPC;
        self.stats.instrs += cost_model.deq_instrs;

        let socket = self.socket_of(thread);
        let acq = self.sockets[socket].acquire(thread, now, cost_model.hold);
        cycles += acq.waited + cost_model.hold;
        self.stats.wait_cycles += acq.waited;

        let head = self.worklist.head_bucket().unwrap_or(0);
        let line = Self::bucket_line(head.min(1 << 20));
        let access = mem.access(thread, line, AccessKind::Store, acq.start);
        cycles += access.latency;

        let task = self.worklist.pop();
        let new_head = self.worklist.head_bucket();
        if task.is_some() && new_head != self.last_head_bucket {
            // Bucket emptied: head moves, serializing on the bucket map.
            let g = self.global.acquire(thread, now + cycles, 30);
            cycles += g.waited + 30;
            self.stats.wait_cycles += g.waited;
            self.last_head_bucket = new_head;
        }

        if task.is_some() {
            self.stats.dequeues += 1;
        } else {
            self.stats.empty_dequeues += 1;
        }
        self.stats.op_cycles += cycles;
        DequeueOutcome { task, cost: cycles }
    }

    fn peek_dequeue(&self, _thread: usize, _now: Cycle) -> Option<Task> {
        // `dequeue` pops the shared worklist regardless of the requesting
        // thread or time, so the policy's own peek is exact.
        self.worklist.peek()
    }

    fn pending(&self) -> usize {
        self.worklist.len()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worklist::PolicyKind;
    use minnow_sim::SimConfig;

    fn setup(threads: usize, kind: PolicyKind) -> (SoftwareScheduler, MemoryHierarchy) {
        let sched = SoftwareScheduler::new(kind.build(), threads);
        let mem = MemoryHierarchy::new(&SimConfig::small(threads.max(1)));
        (sched, mem)
    }

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let (mut s, mut mem) = setup(2, PolicyKind::Fifo);
        let c = s.enqueue(0, Task::new(5, 7), 0, &mut mem);
        assert!(c > 0);
        assert_eq!(s.pending(), 1);
        let d = s.dequeue(1, 100, &mut mem);
        assert_eq!(d.task.unwrap().node, 7);
        assert!(d.cost > 0);
        assert_eq!(s.pending(), 0);
        let empty = s.dequeue(1, 200, &mut mem);
        assert!(empty.task.is_none());
        assert_eq!(s.stats().empty_dequeues, 1);
    }

    #[test]
    fn seeding_is_free() {
        let (mut s, _mem) = setup(1, PolicyKind::Obim(2));
        s.seed(vec![Task::new(1, 1), Task::new(2, 2)]);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.stats().enqueues, 0);
    }

    #[test]
    fn contention_raises_op_cost_with_threads() {
        let mean_cost = |threads: usize| {
            let (mut s, mut mem) = setup(threads, PolicyKind::Fifo);
            // All threads bang on the worklist at the same virtual instant.
            for round in 0..50u64 {
                for t in 0..threads {
                    s.enqueue(t, Task::new(0, t as u32), round * 10, &mut mem);
                }
            }
            s.stats().mean_op_cost()
        };
        let one = mean_cost(1);
        let eight = mean_cost(8);
        assert!(
            eight > one * 1.5,
            "8 threads must contend: {one:.1} vs {eight:.1}"
        );
    }

    #[test]
    fn obim_bucket_transitions_serialize_globally() {
        let (mut s, mut mem) = setup(4, PolicyKind::Obim(0));
        // Every push opens a new, more urgent bucket -> global churn.
        let mut churn_cost = 0;
        for i in 0..20u64 {
            churn_cost += s.enqueue(0, Task::new(100 - i, i as u32), i * 5, &mut mem);
        }
        let (mut s2, mut mem2) = setup(4, PolicyKind::Obim(20));
        // One giant bucket: no transitions after the first.
        let mut flat_cost = 0;
        for i in 0..20u64 {
            flat_cost += s2.enqueue(0, Task::new(100 - i, i as u32), i * 5, &mut mem2);
        }
        assert!(
            churn_cost > flat_cost,
            "bucket churn must cost more: {churn_cost} vs {flat_cost}"
        );
    }

    #[test]
    fn label_names_policy() {
        let (s, _) = setup(1, PolicyKind::Lifo);
        assert_eq!(s.label(), "software(lifo)");
    }

    #[test]
    fn stats_mean_op_cost_handles_zero_ops() {
        let s = SchedStats::default();
        assert_eq!(s.mean_op_cost(), 0.0);
    }
}

//! Task splitting (paper §6.2.1).
//!
//! Power-law graphs contain nodes with enormous adjacency lists — the
//! paper's `rmat16-2e22` has one node owning 27% of all edges, capping
//! speedup at 3.65x under Amdahl's law. Task splitting breaks tasks whose
//! edge count exceeds a threshold into sub-tasks over edge ranges that can
//! be processed in parallel, "as long as edge updates are atomic".

use crate::task::{Task, WHOLE_RANGE};

/// The paper's splitting threshold (10K outgoing edges).
pub const PAPER_SPLIT_THRESHOLD: u32 = 10_000;

/// Splits `task` into chunks of at most `threshold` edges, given the node's
/// degree. Whole-range tasks over small nodes come back unchanged.
///
/// # Panics
///
/// Panics if `threshold == 0`.
pub fn split_task(task: Task, degree: usize, threshold: u32) -> Vec<Task> {
    let mut out = Vec::new();
    split_task_into(task, degree, threshold, &mut out);
    out
}

/// [`split_task`] appending into a caller-owned buffer, so the executor's
/// enqueue loop can reuse one allocation across every task of a run. The
/// buffer is *not* cleared — callers clear it between tasks.
///
/// # Panics
///
/// Panics if `threshold == 0`.
pub fn split_task_into(task: Task, degree: usize, threshold: u32, out: &mut Vec<Task>) {
    assert!(threshold > 0, "split threshold must be positive");
    let range = task.resolve_range(degree);
    let span = range.len() as u32;
    if span <= threshold {
        out.push(task);
        return;
    }
    out.reserve(span.div_ceil(threshold) as usize);
    let mut lo = range.start as u32;
    let hi = range.end as u32;
    while lo < hi {
        let next = (lo + threshold).min(hi);
        // Keep WHOLE_RANGE encoding only for genuinely whole coverage.
        let enc_hi = if next as usize == degree && lo == 0 {
            WHOLE_RANGE
        } else {
            next
        };
        out.push(Task::with_range(task.priority, task.node, lo, enc_hi));
        lo = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tasks_pass_through() {
        let t = Task::new(3, 1);
        let parts = split_task(t, 100, 1000);
        assert_eq!(parts, vec![t]);
    }

    #[test]
    fn large_tasks_split_into_ranges() {
        let t = Task::new(0, 2);
        let parts = split_task(t, 25_000, 10_000);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].resolve_range(25_000), 0..10_000);
        assert_eq!(parts[1].resolve_range(25_000), 10_000..20_000);
        assert_eq!(parts[2].resolve_range(25_000), 20_000..25_000);
    }

    #[test]
    fn split_parts_cover_exactly_once() {
        let t = Task::new(0, 0);
        let degree = 12_345;
        let parts = split_task(t, degree, 1_000);
        let mut covered = vec![false; degree];
        for p in &parts {
            for i in p.resolve_range(degree) {
                assert!(!covered[i], "edge {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn partial_task_splits_within_its_range() {
        let t = Task::with_range(5, 0, 100, 500);
        let parts = split_task(t, 1000, 150);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].resolve_range(1000), 100..250);
        assert_eq!(parts[2].resolve_range(1000), 400..500);
        for p in &parts {
            assert_eq!(p.priority, 5);
        }
    }

    #[test]
    fn priority_preserved() {
        let parts = split_task(Task::new(42, 7), 30_000, 10_000);
        assert!(parts.iter().all(|p| p.priority == 42 && p.node == 7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = split_task(Task::new(0, 0), 10, 0);
    }
}

//! Real (host-parallel) execution of data-driven task loops.
//!
//! Everything else in this crate runs under the *simulated* machine; this
//! module is the functional counterpart — an actual multi-threaded
//! `foreach` over a concurrent OBIM worklist, used by examples and tests to
//! demonstrate that the framework's algorithms are real parallel programs,
//! not just trace generators.
//!
//! The implementation favours clarity over peak host throughput: a sharded
//! bucket map with per-thread grab batches, and counter-based termination
//! detection (every task is accounted for from push to completion).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::task::Task;

/// A concurrent ordered-by-integer-metric worklist.
///
/// Buckets are `priority >> lg_bucket_interval`; `pop_batch` drains from the
/// most urgent non-empty bucket. Sharding: each bucket is its own `Vec`
/// behind a short critical section on the shared map.
#[derive(Debug)]
pub struct ParObim {
    buckets: Mutex<std::collections::BTreeMap<u64, Vec<Task>>>,
    lg_bucket_interval: u32,
    /// Tasks pushed but not yet *completed* (not merely popped); zero means
    /// the loop has terminated.
    outstanding: AtomicU64,
}

impl ParObim {
    /// Creates an empty concurrent OBIM.
    pub fn new(lg_bucket_interval: u32) -> Self {
        ParObim {
            buckets: Mutex::new(std::collections::BTreeMap::new()),
            lg_bucket_interval,
            outstanding: AtomicU64::new(0),
        }
    }

    /// Pushes one task.
    pub fn push(&self, task: Task) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let b = task.bucket(self.lg_bucket_interval);
        self.buckets.lock().entry(b).or_default().push(task);
    }

    /// Pops up to `max` tasks from the most urgent bucket.
    pub fn pop_batch(&self, max: usize) -> Vec<Task> {
        let mut map = self.buckets.lock();
        let Some((&b, q)) = map.iter_mut().next() else {
            return Vec::new();
        };
        let take = q.len().min(max);
        let out: Vec<Task> = q.drain(q.len() - take..).collect();
        if q.is_empty() {
            map.remove(&b);
        }
        out
    }

    /// Marks `n` popped tasks as completed.
    pub fn complete(&self, n: u64) {
        let prev = self.outstanding.fetch_sub(n, Ordering::SeqCst);
        debug_assert!(prev >= n, "completed more tasks than outstanding");
    }

    /// Tasks pushed but not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::SeqCst)
    }
}

/// Runs a parallel `foreach` until the worklist drains.
///
/// `body(task, push)` executes one task; new tasks are submitted through the
/// `push` callback. Returns the total number of tasks executed.
///
/// # Panics
///
/// Panics if `threads == 0`. Panics raised by `body` propagate.
pub fn parallel_for_each<F>(
    initial: Vec<Task>,
    threads: usize,
    lg_bucket_interval: u32,
    body: F,
) -> u64
where
    F: Fn(Task, &dyn Fn(Task)) + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let wl = ParObim::new(lg_bucket_interval);
    for t in initial {
        wl.push(t);
    }
    let executed = AtomicU64::new(0);

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let batch = wl.pop_batch(16);
                if batch.is_empty() {
                    if wl.outstanding() == 0 {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                }
                let n = batch.len() as u64;
                for task in batch {
                    body(task, &|t| wl.push(t));
                }
                executed.fetch_add(n, Ordering::Relaxed);
                wl.complete(n);
            });
        }
    })
    .expect("worker thread panicked");

    executed.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_graph::NodeId;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_obim_orders_buckets() {
        let wl = ParObim::new(1);
        wl.push(Task::new(9, 0));
        wl.push(Task::new(2, 1));
        wl.push(Task::new(3, 2));
        let batch = wl.pop_batch(10);
        // Bucket 1 (priorities 2,3) drains before bucket 4 (priority 9).
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|t| t.priority < 4));
        assert_eq!(wl.outstanding(), 3);
        wl.complete(2);
        assert_eq!(wl.outstanding(), 1);
    }

    #[test]
    fn pop_batch_respects_max() {
        let wl = ParObim::new(0);
        for i in 0..10 {
            wl.push(Task::new(1, i));
        }
        assert_eq!(wl.pop_batch(4).len(), 4);
        assert_eq!(wl.pop_batch(100).len(), 6);
        assert!(wl.pop_batch(1).is_empty());
    }

    #[test]
    fn parallel_bfs_reaches_every_node() {
        let g = grid::generate(&GridConfig::new(24, 24), 5);
        let n = g.nodes();
        let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        dist[0].store(0, Ordering::SeqCst);

        let executed = parallel_for_each(vec![Task::new(0, 0)], 4, 0, |task, push| {
            let v = task.node;
            let d = dist[v as usize].load(Ordering::SeqCst);
            for &nbr in g.neighbors(v) {
                let nd = d + 1;
                let mut cur = dist[nbr as usize].load(Ordering::SeqCst);
                while nd < cur {
                    match dist[nbr as usize].compare_exchange(
                        cur,
                        nd,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => {
                            push(Task::new(nd, nbr));
                            break;
                        }
                        Err(actual) => cur = actual,
                    }
                }
            }
        });

        assert!(executed as usize >= 1);
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&g, 0);
        for (v, &l) in levels.iter().enumerate() {
            assert_eq!(
                dist[v].load(Ordering::SeqCst),
                l as u64,
                "node {v} distance mismatch"
            );
        }
    }

    #[test]
    fn counts_every_executed_task() {
        let counter = AtomicUsize::new(0);
        let executed = parallel_for_each(
            (0..100).map(|i| Task::new(0, i as NodeId)).collect(),
            3,
            0,
            |_t, _push| {
                counter.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(executed, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn dynamic_spawning_terminates() {
        // Each task with node > 0 spawns one child with node-1: a chain.
        let executed = parallel_for_each(vec![Task::new(0, 50)], 4, 0, |t, push| {
            if t.node > 0 {
                push(Task::new(0, t.node - 1));
            }
        });
        assert_eq!(executed, 51);
    }
}

//! Reusable per-run scratch state for the executors' task-charging loop.
//!
//! Every executor (software, Minnow, WDP, BSP) repeats the same inner
//! sequence per task: record the operator's trace into a [`TaskCtx`],
//! replay the recorded accesses against the [`MemoryHierarchy`], collect
//! the delinquent-load latencies, and fold the result through the
//! [`CoreModel`]. Done naively that costs several heap allocations per
//! task (fresh `TaskCtx` buffers, a fresh delinquent vector, a fresh
//! split buffer). [`TaskScratch`] owns all of those buffers once per run
//! and clears them between tasks, so steady-state task charging performs
//! no heap allocation at all — `tests/alloc_steady_state.rs` pins that
//! with a counting global allocator.
//!
//! [`charge_task`] is the shared charging path itself; keeping it in one
//! place guarantees the asynchronous and BSP executors charge identically.

use minnow_graph::AddressMap;
use minnow_sim::core::{CoreModel, TaskCycles};
use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::{AccessKind, CacheLevel, MemoryHierarchy};
use minnow_sim::observer::{HwPrefetcher, MemoryImage};

use crate::op::TaskCtx;
use crate::task::Task;

use minnow_sim::core::TaskTrace;

/// Per-run scratch buffers threaded through an executor's task loop.
///
/// Construct once before the loop, call [`TaskScratch::begin_task`] per
/// task, run the operator against [`TaskScratch::ctx`], then charge with
/// [`charge_task`]. Nothing here affects simulated time — it is purely a
/// host-side allocation-reuse vehicle.
#[derive(Debug)]
pub struct TaskScratch {
    /// The operator-facing recorder (access trace, push list).
    pub ctx: TaskCtx,
    /// The core-model input; its delinquent-latency vector is the reused
    /// buffer the hierarchy's resolved miss latencies land in.
    pub trace: TaskTrace,
    /// Split buffer for the enqueue loop ([`crate::split::split_task_into`]).
    pub parts: Vec<Task>,
    /// Shared fetches left in flight on the weave during this task's charge
    /// loop: `(delinquent-latency slot to patch, fetch seq)`. Settled at the
    /// task-end barrier inside [`charge_task`]; always empty between tasks.
    pending_fetches: Vec<(Option<usize>, u64)>,
    /// The canonical `(clock, core)` key of the last task begun through
    /// [`TaskScratch::begin_task_at`] — the executor's dispatch order.
    /// Debug builds assert the sequence is lexicographically nondecreasing,
    /// i.e. that front sharding never reorders the serial oracle's
    /// linearization.
    last_key: Option<(Cycle, usize)>,
}

impl TaskScratch {
    /// Fresh scratch for one run.
    pub fn new(map: AddressMap, count_atomics_as_stores: bool) -> Self {
        TaskScratch {
            ctx: TaskCtx::new(map, count_atomics_as_stores),
            trace: TaskTrace::default(),
            parts: Vec::new(),
            pending_fetches: Vec::new(),
            last_key: None,
        }
    }

    /// Clears all per-task state, keeping every allocation.
    #[inline]
    pub fn begin_task(&mut self) {
        self.ctx.reset();
    }

    /// Like [`TaskScratch::begin_task`], but also records the canonical
    /// `(clock, core)` dispatch key and debug-asserts the sequence is
    /// lexicographically nondecreasing — the front-sharded executor's
    /// issue-order invariant (see `minnow_runtime::front`). The BSP
    /// executor charges in round-robin order, not canonical order, so it
    /// keeps plain [`TaskScratch::begin_task`].
    #[inline]
    pub fn begin_task_at(&mut self, now: Cycle, core: usize) {
        debug_assert!(
            self.last_key.is_none_or(|prev| prev <= (now, core)),
            "canonical dispatch order violated: {:?} then {:?}",
            self.last_key,
            (now, core)
        );
        self.last_key = Some((now, core));
        self.ctx.reset();
    }

    /// Records the canonical dispatch key like
    /// [`TaskScratch::begin_task_at`] but *without* resetting the recorder:
    /// used when committing a validated speculation, whose pre-recorded
    /// `TaskCtx` is swapped in wholesale instead of being re-recorded.
    #[inline]
    pub fn note_task_at(&mut self, now: Cycle, core: usize) {
        debug_assert!(
            self.last_key.is_none_or(|prev| prev <= (now, core)),
            "canonical dispatch order violated: {:?} then {:?}",
            self.last_key,
            (now, core)
        );
        self.last_key = Some((now, core));
    }
}

/// Counters [`charge_task`] accumulates for the run report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChargeCounters {
    /// Delinquent *loads* observed (first-touch loads that left the L1).
    pub delinquent_loads: u64,
    /// Total loads (first-touch + ordinary).
    pub total_loads: u64,
}

/// Replays the trace recorded in `scratch.ctx` against the hierarchy
/// starting at `t0` on `thread`, gathers delinquent latencies into the
/// reused trace buffer, and maps the task through the core model.
///
/// Identical in behavior to the loop previously duplicated inside
/// `sim_exec::run_with_prefetcher` and `bsp::run_bsp`: accesses issue at
/// `t0 + 2k`, loads feed the optional hardware prefetcher, and first
/// touches that left the L1 count as delinquent.
#[inline]
pub fn charge_task(
    scratch: &mut TaskScratch,
    mem: &mut MemoryHierarchy,
    core_model: &CoreModel,
    thread: usize,
    t0: Cycle,
    hw_prefetcher: &mut Option<(&mut dyn HwPrefetcher, &dyn MemoryImage)>,
    counters: &mut ChargeCounters,
) -> TaskCycles {
    scratch.trace.delinquent_latencies.clear();
    debug_assert!(scratch.pending_fetches.is_empty());
    let ctx = &scratch.ctx;
    let delinquent = &mut scratch.trace.delinquent_latencies;
    let pending = &mut scratch.pending_fetches;
    let mut first_touch_loads = 0u64;
    for (k, acc) in ctx.accesses().iter().enumerate() {
        let at = t0 + 2 * k as Cycle;
        let res = mem.access_deferred(thread, acc.addr, acc.kind, at);
        if acc.kind == AccessKind::Load {
            first_touch_loads += u64::from(acc.first_touch);
            if let Some((hw, image)) = hw_prefetcher.as_mut() {
                hw.on_demand_load(thread, acc.addr, acc.value, at, mem, *image);
            }
        }
        if let Some(seq) = res.pending {
            // The fetch's shared leg is still on the weave. A deferred
            // fetch always left the private caches, so the delinquency
            // decision needs no latency — only the slot to patch does.
            if acc.first_touch {
                delinquent.push(res.result.latency);
                pending.push((Some(delinquent.len() - 1), seq));
                if acc.kind == AccessKind::Load {
                    counters.delinquent_loads += 1;
                }
            } else {
                pending.push((None, seq));
            }
        } else if acc.first_touch && res.result.level > CacheLevel::L1 {
            delinquent.push(res.result.latency);
            if acc.kind == AccessKind::Load {
                counters.delinquent_loads += 1;
            }
        }
    }
    counters.total_loads += first_touch_loads + ctx.other_loads();

    // Task-end barrier: fold the weave's latencies into the delinquent
    // slots before the core model consumes them. By this point the weave
    // has been absorbing the fetches while the loop above kept running.
    if !scratch.pending_fetches.is_empty() {
        mem.drain_weave();
        let delinquent = &mut scratch.trace.delinquent_latencies;
        for (slot, seq) in scratch.pending_fetches.drain(..) {
            let (beyond, _level) = mem
                .take_beyond(seq)
                .expect("task-end drain settles every charge fetch");
            if let Some(i) = slot {
                delinquent[i] += beyond;
            }
        }
    }

    scratch.trace.instructions = ctx.instrs().max(1);
    scratch.trace.branches = ctx.branches();
    scratch.trace.atomics = ctx.atomics();
    scratch.trace.other_loads = ctx.other_loads();
    scratch.trace.stores = ctx.stores();
    core_model.task_cycles(&scratch.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_sim::config::SimConfig;
    use minnow_sim::core::CoreMode;

    #[test]
    fn charge_matches_a_fresh_trace() {
        let cfg = SimConfig::small(1);
        let core_model = CoreModel::new(cfg.ooo, CoreMode::realistic(), 0.05);

        // Record the same synthetic task twice: once through the scratch
        // path, once by hand against a second identical hierarchy.
        let record = |ctx: &mut TaskCtx| {
            ctx.load_node(3);
            ctx.load_node(90);
            ctx.add_branches(2);
            ctx.add_instrs(20);
            ctx.atomic_node(90);
        };

        let mut scratch = TaskScratch::new(AddressMap::standard(), false);
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut counters = ChargeCounters::default();
        scratch.begin_task();
        record(&mut scratch.ctx);
        let got = charge_task(
            &mut scratch,
            &mut mem,
            &core_model,
            0,
            0,
            &mut None,
            &mut counters,
        );

        let mut mem2 = MemoryHierarchy::new(&cfg);
        let mut ctx = TaskCtx::new(AddressMap::standard(), false);
        record(&mut ctx);
        let mut delinquent = Vec::new();
        for (k, acc) in ctx.accesses().iter().enumerate() {
            let res = mem2.access(0, acc.addr, acc.kind, 2 * k as Cycle);
            if acc.first_touch && res.level > CacheLevel::L1 {
                delinquent.push(res.latency);
            }
        }
        let trace = TaskTrace {
            instructions: ctx.instrs().max(1),
            branches: ctx.branches(),
            atomics: ctx.atomics(),
            delinquent_latencies: delinquent,
            other_loads: ctx.other_loads(),
            stores: ctx.stores(),
        };
        assert_eq!(got, core_model.task_cycles(&trace));
        assert!(counters.total_loads > 0);
    }

    #[test]
    fn begin_task_clears_recordings_but_keeps_mode() {
        let mut scratch = TaskScratch::new(AddressMap::standard(), true);
        scratch.ctx.atomic_node(1); // demoted to store in serial mode
        scratch.ctx.push(Task::new(0, 1));
        assert_eq!(scratch.ctx.stores(), 1);
        scratch.begin_task();
        assert_eq!(scratch.ctx.stores(), 0);
        assert!(scratch.ctx.pushes().is_empty());
        assert!(scratch.ctx.accesses().is_empty());
        scratch.ctx.atomic_node(2);
        assert_eq!(scratch.ctx.atomics(), 0, "serial-baseline mode survives");
        assert_eq!(scratch.ctx.stores(), 1);
    }
}

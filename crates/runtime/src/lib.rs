//! # minnow-runtime — a Galois-like task framework over the simulated CMP
//!
//! This crate reproduces the software side of the Minnow paper's evaluation
//! stack (Galois 2.2.1 with the paper's §6.2.1 optimizations):
//!
//! * [`task`] — priority/node work items with edge sub-ranges,
//! * [`worklist`] — scheduling policies: FIFO, LIFO, chunked FIFO, OBIM
//!   (bucketed priorities), strict priority queue (paper §2.1, Fig. 3),
//! * [`sched`] — worker-side timing of worklist operations: instruction
//!   costs, serialization, cache-line ping-pong (paper Fig. 5, 11),
//! * [`sim_exec`] — the virtual-time parallel executor that runs operators
//!   against the simulated memory hierarchy and core model,
//! * [`split`] — task splitting for mega-hub nodes (paper §6.2.1),
//! * [`bsp`] — a GraphMat-like bulk-synchronous baseline incl. the bucketed
//!   `GMat*` variant (paper §3.1, Fig. 2/3),
//! * [`op`] — the operator interface workloads implement,
//! * [`par`] — a real host-parallel executor proving the framework runs as
//!   an actual parallel program, not only under simulation.
//!
//! ## Example: running a workload under the software scheduler
//!
//! ```
//! use minnow_runtime::sim_exec::{run_software, ExecConfig};
//! use minnow_runtime::worklist::PolicyKind;
//! # use minnow_runtime::{op::{Operator, TaskCtx, PrefetchKind}, task::Task};
//! # use std::sync::Arc;
//! # #[derive(Debug)]
//! # struct Noop(Arc<minnow_graph::Csr>);
//! # impl Operator for Noop {
//! #     fn name(&self) -> &'static str { "noop" }
//! #     fn graph(&self) -> &Arc<minnow_graph::Csr> { &self.0 }
//! #     fn initial_tasks(&self) -> Vec<Task> { vec![Task::new(0, 0)] }
//! #     fn default_policy(&self) -> PolicyKind { PolicyKind::Fifo }
//! #     fn execute(&mut self, _t: Task, ctx: &mut TaskCtx) { ctx.add_instrs(10); }
//! # }
//! let graph = Arc::new(minnow_graph::Csr::from_edges(2, &[(0, 1)], None));
//! let mut op = Noop(graph);
//! let report = run_software(&mut op, PolicyKind::Fifo, &ExecConfig::new(2));
//! assert_eq!(report.tasks, 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bsp;
pub mod front;
pub mod op;
pub mod par;
pub mod sched;
pub mod scratch;
pub mod sim_exec;
pub mod split;
pub mod task;
pub mod worklist;

pub use crate::op::{Operator, PrefetchKind, SpecWrite, TaskCtx};
pub use crate::sched::{SchedulerModel, SoftwareScheduler};
pub use crate::sim_exec::{run, run_software, ExecConfig, RunReport};
pub use crate::task::Task;
pub use crate::worklist::{PolicyKind, Worklist};

//! The operator interface: how workloads express their per-task work.
//!
//! A Galois-style *operator* processes one active node per task: it reads
//! the node, walks its edges, conditionally updates neighbors, and pushes
//! follow-up tasks (paper Fig. 1). Implementations do their functional work
//! against their own state and *record* what they touched into a
//! [`TaskCtx`]; the executor then charges the recorded accesses against the
//! simulated memory hierarchy and core model.
//!
//! The recorder also classifies loads the way the paper's Fig. 6 does:
//! the *first* touch of a graph node/edge cache line within a task is a
//! *delinquent-load candidate* (it typically misses); repeated touches and
//! stack/spill traffic are ordinary loads.

use std::sync::Arc;

use fxhash::FxHashSet;

use minnow_graph::{AddressMap, Csr, NodeId};
use minnow_sim::hierarchy::AccessKind;

use crate::task::Task;
use crate::worklist::PolicyKind;

/// Fraction of instructions that generate non-graph loads (stack reads,
/// register spills/fills — §3.4 calls these out as the bulk of the load
/// stream on x86).
const STACK_LOADS_PER_INSTR_NUM: u64 = 75;
const STACK_LOADS_PER_INSTR_DEN: u64 = 100;

/// One recorded memory access, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recorded {
    /// Simulated address.
    pub addr: u64,
    /// Load / store / atomic.
    pub kind: AccessKind,
    /// First touch of this cache line within the task (delinquent
    /// candidate).
    pub first_touch: bool,
    /// Loaded value for index/pointer loads (edge destinations), consumed
    /// by indirect hardware prefetchers (IMP).
    pub value: Option<u64>,
}

/// Which worklist-directed prefetch program a workload needs (paper §5.3:
/// all workloads share the standard node→edges→neighbors program except TC,
/// which got a custom one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchKind {
    /// `prefetchTask`/`prefetchEdge` from Fig. 14: task → node → edges →
    /// destination nodes.
    Standard,
    /// Triangle counting: node → edges → neighbor adjacency lists (binary
    /// search probes).
    TriangleCounting,
}

/// One deferred functional update recorded during speculative execution.
///
/// Speculation runs [`Operator::execute_spec`] with `&self` — the operator
/// may not mutate its own state until the task is validated against the
/// serial dispatch order. Instead it journals each intended write here;
/// [`Operator::apply_spec`] replays the journal on commit. Two shapes cover
/// every workload in the suite: absolute assignments (depth/distance/label/
/// rank words, encoded as raw `u64` bits) and commutative accumulations
/// (triangle counts, conflict tallies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecWrite {
    /// `state[slot][node] = bits` (floats travel as `to_bits()`).
    Assign {
        /// Operator-defined state array index (e.g. 0 = depth, 1 = rank).
        slot: u8,
        /// Node whose record is written.
        node: NodeId,
        /// New raw value.
        bits: u64,
    },
    /// `state[slot] += amount` for per-run scalar accumulators.
    Delta {
        /// Operator-defined accumulator index.
        slot: u8,
        /// Amount to add.
        amount: u64,
    },
}

/// Per-task recording context handed to [`Operator::execute`].
#[derive(Debug)]
pub struct TaskCtx {
    map: AddressMap,
    accesses: Vec<Recorded>,
    seen_lines: FxHashSet<u64>,
    instrs: u64,
    branches: u64,
    atomics: u64,
    stores: u64,
    secondary_loads: u64,
    pushes: Vec<Task>,
    spec_log: Vec<SpecWrite>,
    /// Serial-baseline mode: atomics are recorded as plain stores (the
    /// paper's serial baseline "uses Galois but has atomics removed", §6.3.1).
    count_atomics_as_stores: bool,
}

impl TaskCtx {
    /// Creates a recorder for one task.
    pub fn new(map: AddressMap, count_atomics_as_stores: bool) -> Self {
        TaskCtx {
            map,
            accesses: Vec::with_capacity(16),
            seen_lines: FxHashSet::with_capacity_and_hasher(16, Default::default()),
            instrs: 0,
            branches: 0,
            atomics: 0,
            stores: 0,
            secondary_loads: 0,
            pushes: Vec::new(),
            spec_log: Vec::new(),
            count_atomics_as_stores,
        }
    }

    /// Clears every recording for the next task while keeping all buffer
    /// allocations, so one `TaskCtx` can serve an entire run without
    /// heap traffic. The address map and baseline mode are retained.
    pub fn reset(&mut self) {
        self.accesses.clear();
        self.seen_lines.clear();
        self.instrs = 0;
        self.branches = 0;
        self.atomics = 0;
        self.stores = 0;
        self.secondary_loads = 0;
        self.pushes.clear();
        self.spec_log.clear();
    }

    /// The address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    #[inline]
    fn record(&mut self, addr: u64, kind: AccessKind, value: Option<u64>) {
        let line = addr >> 6;
        let first = self.seen_lines.insert(line);
        if first {
            self.accesses.push(Recorded {
                addr,
                kind,
                first_touch: true,
                value,
            });
        } else if kind == AccessKind::Load {
            self.secondary_loads += 1;
        } else {
            // Repeated writes to a warmed line still need ordering but hit
            // close to the core; record without the delinquent mark.
            self.accesses.push(Recorded {
                addr,
                kind,
                first_touch: false,
                value,
            });
        }
    }

    /// Records a load of node `v`'s record.
    #[inline]
    pub fn load_node(&mut self, v: NodeId) {
        self.record(self.map.node_addr(v), AccessKind::Load, None);
    }

    /// Records a store to node `v`'s record.
    #[inline]
    pub fn store_node(&mut self, v: NodeId) {
        self.stores += 1;
        self.record(self.map.node_addr(v), AccessKind::Store, None);
    }

    /// Records an atomic read-modify-write on node `v`'s record
    /// (compare-and-swap label/distance updates, fetch-add residuals).
    #[inline]
    pub fn atomic_node(&mut self, v: NodeId) {
        if self.count_atomics_as_stores {
            self.store_node(v);
        } else {
            self.atomics += 1;
            self.record(self.map.node_addr(v), AccessKind::Atomic, None);
        }
    }

    /// Records a load of CSR edge slot `e` whose destination is `dst`
    /// (the loaded value, visible to indirect hardware prefetchers).
    #[inline]
    pub fn load_edge(&mut self, e: usize, dst: NodeId) {
        self.record(self.map.edge_addr(e), AccessKind::Load, Some(dst as u64));
    }

    /// Adds `n` dynamic instructions of plain compute.
    #[inline]
    pub fn add_instrs(&mut self, n: u64) {
        self.instrs += n;
    }

    /// Adds `n` data-dependent branches (compare against loaded values).
    #[inline]
    pub fn add_branches(&mut self, n: u64) {
        self.branches += n;
        self.instrs += n;
    }

    /// Pushes a follow-up task.
    #[inline]
    pub fn push(&mut self, task: Task) {
        self.pushes.push(task);
    }

    /// Recorded accesses in program order.
    #[inline]
    pub fn accesses(&self) -> &[Recorded] {
        &self.accesses
    }

    /// Tasks pushed by the operator.
    pub fn pushes(&self) -> &[Task] {
        &self.pushes
    }

    /// Takes ownership of the pushed tasks.
    pub fn take_pushes(&mut self) -> Vec<Task> {
        std::mem::take(&mut self.pushes)
    }

    /// Total dynamic instructions recorded.
    #[inline]
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Data-dependent branches recorded.
    #[inline]
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Atomics recorded.
    #[inline]
    pub fn atomics(&self) -> u64 {
        self.atomics
    }

    /// Plain stores recorded.
    #[inline]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Ordinary (non-delinquent) loads: secondary graph touches plus
    /// stack/spill traffic derived from the instruction count.
    #[inline]
    pub fn other_loads(&self) -> u64 {
        self.secondary_loads + self.instrs * STACK_LOADS_PER_INSTR_NUM / STACK_LOADS_PER_INSTR_DEN
    }

    /// Journals a deferred absolute write `state[slot][node] = bits`.
    #[inline]
    pub fn spec_assign(&mut self, slot: u8, node: NodeId, bits: u64) {
        self.spec_log.push(SpecWrite::Assign { slot, node, bits });
    }

    /// Journals a deferred accumulation `state[slot] += amount`.
    #[inline]
    pub fn spec_delta(&mut self, slot: u8, amount: u64) {
        self.spec_log.push(SpecWrite::Delta { slot, amount });
    }

    /// Read-your-writes lookup over the journal: the most recent value
    /// assigned to `state[slot][node]` within this task, if any. Operators
    /// consult this before falling back to their committed state so that
    /// duplicate edges and self-loops observe earlier journaled updates
    /// exactly as the eager path would.
    #[inline]
    pub fn spec_get(&self, slot: u8, node: NodeId) -> Option<u64> {
        self.spec_log.iter().rev().find_map(|w| match *w {
            SpecWrite::Assign {
                slot: s,
                node: n,
                bits,
            } if s == slot && n == node => Some(bits),
            _ => None,
        })
    }

    /// The journaled deferred writes, in program order.
    #[inline]
    pub fn spec_log(&self) -> &[SpecWrite] {
        &self.spec_log
    }
}

/// A data-driven workload: per-task functional work plus trace recording.
///
/// `Send + Sync` are supertraits: the front-sharded executor relays the
/// whole simulation spine — operator included — between front threads at
/// core ownership boundaries, and under `--speculate` idle shards read the
/// operator concurrently through a shared read lock while pre-executing
/// task prefixes (see `minnow_runtime::front`). All operators are plain
/// owned data over an `Arc<Csr>`, so this costs implementors nothing.
pub trait Operator: Send + Sync {
    /// Workload name (e.g. `"SSSP"`).
    fn name(&self) -> &'static str;

    /// The input graph.
    fn graph(&self) -> &Arc<Csr>;

    /// The address layout this workload uses (TC uses 64B nodes).
    fn address_map(&self) -> AddressMap {
        AddressMap::standard()
    }

    /// Tasks that seed the worklist.
    fn initial_tasks(&self) -> Vec<Task>;

    /// Executes one task: functional updates on `self`, trace into `ctx`.
    fn execute(&mut self, task: Task, ctx: &mut TaskCtx);

    /// Speculative variant of [`Operator::execute`]: performs the same
    /// trace recording but journals every functional update into
    /// `ctx.spec_assign`/`ctx.spec_delta` instead of mutating `self`, so a
    /// mispredicted task can be discarded without replay. Returns `true`
    /// when the task was fully captured; the default declines speculation
    /// entirely, which is always safe (the executor falls back to
    /// [`Operator::execute`]).
    fn execute_spec(&self, _task: Task, _ctx: &mut TaskCtx) -> bool {
        false
    }

    /// Commits a journal produced by [`Operator::execute_spec`] into the
    /// operator's state. Only called after the executor has validated the
    /// speculation against the canonical serial dispatch order.
    fn apply_spec(&mut self, _ctx: &TaskCtx) {}

    /// The scheduling policy the paper uses for this workload.
    fn default_policy(&self) -> PolicyKind;

    /// Which worklist-directed prefetch program fits this workload.
    fn prefetch_kind(&self) -> PrefetchKind {
        PrefetchKind::Standard
    }

    /// Whether task splitting (paper §6.2.1) is safe for this operator:
    /// edge updates must be order-independent and the per-task prologue must
    /// be idempotent. PageRank's residual claim is not, so it opts out.
    fn supports_splitting(&self) -> bool {
        true
    }

    /// Optional convergence check run after the worklist drains; workloads
    /// with verifiable answers assert here (used by tests).
    fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TaskCtx {
        TaskCtx::new(AddressMap::standard(), false)
    }

    #[test]
    fn first_touch_classification_per_line() {
        let mut c = ctx();
        c.load_node(0); // line A
        c.load_node(1); // same 64B line (32B nodes)
        c.load_node(2); // new line
        let firsts: Vec<bool> = c.accesses().iter().map(|a| a.first_touch).collect();
        assert_eq!(firsts, vec![true, true]);
        assert_eq!(c.other_loads(), 1); // node 1 was a secondary touch
    }

    #[test]
    fn edges_share_lines_four_to_one() {
        let mut c = ctx();
        for e in 0..8 {
            c.load_edge(e, e as NodeId);
        }
        assert_eq!(c.accesses().len(), 2);
        assert_eq!(c.other_loads(), 6);
    }

    #[test]
    fn atomics_demoted_in_serial_mode() {
        let mut serial = TaskCtx::new(AddressMap::standard(), true);
        serial.atomic_node(5);
        assert_eq!(serial.atomics(), 0);
        assert_eq!(serial.stores(), 1);

        let mut par = ctx();
        par.atomic_node(5);
        assert_eq!(par.atomics(), 1);
        assert_eq!(par.accesses()[0].kind, AccessKind::Atomic);
    }

    #[test]
    fn branches_count_as_instructions() {
        let mut c = ctx();
        c.add_instrs(10);
        c.add_branches(3);
        assert_eq!(c.instrs(), 13);
        assert_eq!(c.branches(), 3);
    }

    #[test]
    fn stack_loads_scale_with_instructions() {
        let mut c = ctx();
        c.add_instrs(100);
        assert_eq!(c.other_loads(), 75);
    }

    #[test]
    fn pushes_are_collected_and_takeable() {
        let mut c = ctx();
        c.push(Task::new(1, 2));
        c.push(Task::new(3, 4));
        assert_eq!(c.pushes().len(), 2);
        let taken = c.take_pushes();
        assert_eq!(taken.len(), 2);
        assert!(c.pushes().is_empty());
    }

    #[test]
    fn repeated_store_to_warm_line_not_first_touch() {
        let mut c = ctx();
        c.load_node(0);
        c.store_node(0);
        assert_eq!(c.accesses().len(), 2);
        assert!(!c.accesses()[1].first_touch);
    }
}

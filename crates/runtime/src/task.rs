//! Tasks: the unit of scheduled work.
//!
//! A Minnow task is "two 64-bit values: an integer priority, and a pointer
//! to the task data" (paper §4.1). Here the pointer is a node id plus an
//! optional edge sub-range used by *task splitting* (paper §6.2.1), which
//! breaks nodes with huge adjacency lists into independently schedulable
//! slices.

use minnow_graph::NodeId;

/// Sentinel meaning "the whole adjacency list".
pub const WHOLE_RANGE: u32 = u32::MAX;

/// One schedulable work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    /// Scheduling priority; smaller is more urgent (OBIM processes buckets
    /// in ascending order).
    pub priority: u64,
    /// The active node this task processes.
    pub node: NodeId,
    /// First adjacency-list slot to process (inclusive).
    pub edge_lo: u32,
    /// One past the last adjacency-list slot; [`WHOLE_RANGE`] means "to the
    /// end".
    pub edge_hi: u32,
}

impl Task {
    /// A task covering the node's whole adjacency list.
    pub fn new(priority: u64, node: NodeId) -> Self {
        Task {
            priority,
            node,
            edge_lo: 0,
            edge_hi: WHOLE_RANGE,
        }
    }

    /// A split task covering adjacency slots `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_range(priority: u64, node: NodeId, lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "invalid edge range {lo}..{hi}");
        Task {
            priority,
            node,
            edge_lo: lo,
            edge_hi: hi,
        }
    }

    /// Whether this task covers the whole adjacency list.
    pub fn is_whole(&self) -> bool {
        self.edge_lo == 0 && self.edge_hi == WHOLE_RANGE
    }

    /// Resolves the adjacency sub-range against the node's actual degree.
    pub fn resolve_range(&self, degree: usize) -> std::ops::Range<usize> {
        let lo = (self.edge_lo as usize).min(degree);
        let hi = if self.edge_hi == WHOLE_RANGE {
            degree
        } else {
            (self.edge_hi as usize).min(degree)
        };
        lo..hi.max(lo)
    }

    /// The OBIM bucket this task falls into for a given bucket interval.
    pub fn bucket(&self, lg_bucket_interval: u32) -> u64 {
        self.priority >> lg_bucket_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_task_resolves_to_full_degree() {
        let t = Task::new(3, 7);
        assert!(t.is_whole());
        assert_eq!(t.resolve_range(10), 0..10);
        assert_eq!(t.resolve_range(0), 0..0);
    }

    #[test]
    fn split_task_clamps_to_degree() {
        let t = Task::with_range(0, 1, 4, 8);
        assert!(!t.is_whole());
        assert_eq!(t.resolve_range(10), 4..8);
        assert_eq!(t.resolve_range(6), 4..6);
        assert_eq!(t.resolve_range(2), 2..2);
    }

    #[test]
    fn bucket_discretizes_priority() {
        // bucket_number = priority >> lg_bucket_interval (paper §2.1).
        let t = Task::new(37, 0);
        assert_eq!(t.bucket(0), 37);
        assert_eq!(t.bucket(3), 4);
        assert_eq!(t.bucket(10), 0);
    }

    #[test]
    #[should_panic(expected = "invalid edge range")]
    fn with_range_rejects_inverted() {
        let _ = Task::with_range(0, 0, 5, 2);
    }
}

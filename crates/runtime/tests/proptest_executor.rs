//! Property tests over the simulated executor's accounting invariants.

use std::sync::Arc;

use proptest::prelude::*;

use minnow_graph::gen::uniform::{self, UniformConfig};
use minnow_graph::Csr;
use minnow_runtime::sim_exec::{run_software, ExecConfig};
use minnow_runtime::{Operator, PolicyKind, PrefetchKind, Task, TaskCtx};

/// A BFS-like operator that counts its own pushes, used to check executor
/// conservation invariants.
#[derive(Debug)]
struct CountingBfs {
    graph: Arc<Csr>,
    dist: Vec<u64>,
    pushes: u64,
}

impl Operator for CountingBfs {
    fn name(&self) -> &'static str {
        "counting-bfs"
    }
    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }
    fn initial_tasks(&self) -> Vec<Task> {
        vec![Task::new(0, 0)]
    }
    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(0)
    }
    fn prefetch_kind(&self) -> PrefetchKind {
        PrefetchKind::Standard
    }
    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(8);
        if self.dist[v as usize] < task.priority {
            return;
        }
        self.dist[v as usize] = self.dist[v as usize].min(task.priority);
        let d = self.dist[v as usize];
        let graph = self.graph.clone();
        for (e, u, _) in graph.edges_of(v) {
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(6);
            if self.dist[u as usize] > d + 1 {
                self.dist[u as usize] = d + 1;
                ctx.atomic_node(u);
                ctx.push(Task::new(d + 1, u));
                self.pushes += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Without a timeout, executed tasks == pushed tasks + seeds, for any
    /// thread count and policy: the executor loses and duplicates nothing.
    #[test]
    fn executor_conserves_tasks(seed in 0u64..200, threads in 1usize..6,
                                policy in 0usize..4) {
        let graph = Arc::new(uniform::generate(&UniformConfig::new(200, 3), seed));
        let mut op = CountingBfs {
            graph: graph.clone(),
            dist: vec![u64::MAX; graph.nodes()],
            pushes: 0,
        };
        op.dist[0] = 0;
        let policy = [
            PolicyKind::Fifo,
            PolicyKind::Lifo,
            PolicyKind::Obim(0),
            PolicyKind::Chunked(4),
        ][policy];
        let report = run_software(&mut op, policy, &ExecConfig::new(threads));
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.tasks, op.pushes + 1, "pushed+seed == executed");
        // BFS levels are exact regardless of policy/threads.
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&graph, 0);
        for (v, &l) in levels.iter().enumerate() {
            let want = if l == usize::MAX { u64::MAX } else { l as u64 };
            prop_assert_eq!(op.dist[v], want);
        }
    }

    /// Makespan, instruction count, and misses are deterministic functions
    /// of (graph seed, threads, policy).
    #[test]
    fn executor_is_deterministic(seed in 0u64..100, threads in 1usize..5) {
        let once = || {
            let graph = Arc::new(uniform::generate(&UniformConfig::new(150, 3), seed));
            let mut op = CountingBfs {
                graph: graph.clone(),
                dist: vec![u64::MAX; graph.nodes()],
                pushes: 0,
            };
            op.dist[0] = 0;
            run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(threads))
        };
        let a = once();
        let b = once();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.instructions, b.instructions);
        prop_assert_eq!(a.l2_misses, b.l2_misses);
    }

    /// The breakdown accounts every busy cycle: each component is bounded
    /// by the total and the total is bounded by threads * makespan.
    #[test]
    fn breakdown_is_consistent(seed in 0u64..100, threads in 1usize..5) {
        let graph = Arc::new(uniform::generate(&UniformConfig::new(150, 3), seed));
        let mut op = CountingBfs {
            graph: graph.clone(),
            dist: vec![u64::MAX; graph.nodes()],
            pushes: 0,
        };
        op.dist[0] = 0;
        let r = run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(threads));
        let total = r.breakdown.total();
        prop_assert!(total > 0);
        prop_assert!(r.breakdown.useful <= total);
        prop_assert!(r.breakdown.worklist <= total);
        prop_assert!(
            total <= r.makespan * threads as u64,
            "busy {} > threads*makespan {}",
            total,
            r.makespan * threads as u64
        );
    }
}
